"""Per-structure invariant auditors for every PAM and SAM.

Each auditor walks its structure through the page store's uncharged
audit accessors (:meth:`~repro.storage.pagestore.PageStore.peek` and
friends) and checks the structural invariants documented in DESIGN.md.
Auditors are looked up through the MRO, so subclasses inherit their base
class's auditor (``MultilevelGridFile`` uses the BUDDY auditor,
``QuantileHashing`` the PLOP one).

Tolerated overflows — pages an implementation legitimately leaves over
capacity because no admissible split exists — are re-derived here by
calling the structure's own *pure* split chooser: a page may exceed its
capacity only if the chooser returns "no split possible" for its current
contents.
"""

from __future__ import annotations

from typing import Callable

from repro.geometry import blocks
from repro.geometry.rect import Rect
from repro.geometry.zorder import decompose_rect
from repro.pam.bang import BangFile
from repro.pam.buddytree import BuddyTree
from repro.pam.gridfile import GridFile
from repro.pam.hbtree import HBTree
from repro.pam.kdbtree import KdBTree
from repro.pam.plop import PlopHashing
from repro.pam.twingrid import TwinGridFile
from repro.pam.twolevelgrid import TwoLevelGridFile
from repro.pam.zbtree import ZOrderBTree
from repro.sam.clipping import _MAX_DEPTH as _CLIP_MAX_DEPTH
from repro.sam.clipping import ClippingSAM
from repro.sam.overlapping import OverlappingPlop
from repro.sam.rplustree import RPlusTree
from repro.sam.rtree import RTree
from repro.sam.transformation import TransformationSAM
from repro.storage.page import PageKind
from repro.verify.invariants import (
    Audit,
    Violation,
    check_bplus_tree,
    check_grid_layer,
    check_plop_grid,
)

__all__ = ["AUDITORS", "register", "run_audit"]

#: Structure class -> auditor; resolved through the MRO by `run_audit`.
AUDITORS: dict[type, Callable[[Audit], None]] = {}


def register(cls: type):
    def deco(fn: Callable[[Audit], None]):
        AUDITORS[cls] = fn
        return fn

    return deco


def run_audit(am) -> list[Violation]:
    """Audit ``am`` with the auditor registered for its closest class."""
    for klass in type(am).__mro__:
        fn = AUDITORS.get(klass)
        if fn is not None:
            audit = Audit(am)
            fn(audit)
            audit.check_record_count()
            return audit.violations
    return [
        Violation(
            "auditor.missing",
            f"no auditor registered for {type(am).__name__}",
        )
    ]


# -- shared geometric checks ----------------------------------------------

#: Absolute slack for volume bookkeeping of region partitions.
_AREA_EPS = 1e-9


def _check_partition(audit: Audit, region: Rect, rects, prefix: str) -> None:
    """``rects`` must tile ``region``: contained, interior-disjoint, complete."""
    total = 0.0
    for r in rects:
        audit.check(
            region.contains_rect(r),
            f"{prefix}.containment",
            f"child region {r} escapes its parent region {region}",
        )
        total += r.area()
    for i in range(len(rects)):
        for j in range(i + 1, len(rects)):
            inter = rects[i].intersection(rects[j])
            audit.check(
                inter is None or inter.area() <= _AREA_EPS,
                f"{prefix}.disjoint",
                f"sibling regions {rects[i]} and {rects[j]} overlap in "
                f"{inter}",
            )
    audit.check(
        abs(total - region.area()) <= _AREA_EPS,
        f"{prefix}.complete",
        f"child regions cover volume {total}, parent region has "
        f"{region.area()} (the partition must be complete)",
    )


def _half_extents_bounded(audit: Audit, am, rect: Rect, code: str) -> None:
    for axis in range(am.dims):
        half = (rect.hi[axis] - rect.lo[axis]) / 2.0
        audit.check(
            half <= am._max_extent[axis] + 1e-12,
            code,
            f"stored rect {rect} has half-extent {half} on axis {axis}, "
            f"above the recorded maximum {am._max_extent[axis]}",
        )


# -- BUDDY hash tree (and the balanced MLGF variant) ----------------------


@register(BuddyTree)
def _audit_buddy(a: Audit) -> None:
    am = a.am
    dims = am.dims
    pins = {am._root_pid}
    if am._root_is_data:
        a.check_kind(am._root_pid, PageKind.DATA, "buddy.kind")
        page = a.store.peek(am._root_pid)
        if len(page.records) > am._capacity:
            a.check(
                am._split_records(page.records) is None,
                "buddy.data-capacity",
                f"root data page holds {len(page.records)} records over "
                f"capacity {am._capacity} although a split is possible",
            )
        a.check_page_accounting({am._root_pid}, pins)
        return
    dir_pids: set[int] = set()
    data_refs: dict[int, list[tuple]] = {}  # pid -> [(entry, node pid, depth)]
    stack = [(am._root_pid, 1, None)]
    while stack:
        pid, depth, ref_rect = stack.pop()
        if not a.check(
            pid not in dir_pids,
            "buddy.dir-shared",
            f"directory page {pid} is referenced more than once",
        ):
            continue
        dir_pids.add(pid)
        a.check_kind(pid, PageKind.DIRECTORY, "buddy.kind")
        node = a.store.peek(pid)
        a.check(
            len(node.entries) <= am._fanout,
            "buddy.fanout",
            f"directory page {pid} holds {len(node.entries)} entries, "
            f"fanout {am._fanout}",
        )
        least = 1 if am.balanced and pid != am._root_pid else 2
        a.check(
            len(node.entries) >= least,
            "buddy.min-entries",
            f"directory page {pid} holds {len(node.entries)} entries, "
            f"minimum {least}",
        )
        if ref_rect is not None and node.entries:
            got = Rect.bounding([e.rect for e in node.entries])
            a.check(
                ref_rect == got,
                "buddy.mbr-exact",
                f"entry region {ref_rect} for directory page {pid} is not "
                f"the exact MBR {got} of its entries",
            )
        ref_block = (
            blocks.min_enclosing_block(ref_rect, dims)
            if ref_rect is not None
            else ()
        )
        for e in node.entries:
            a.check(
                blocks.is_prefix(ref_block, e.block(dims)),
                "buddy.nesting",
                f"entry block {e.block(dims)} in page {pid} is not nested "
                f"in the parent's buddy block {ref_block}",
            )
            if e.is_data:
                data_refs.setdefault(e.pid, []).append((e, pid, depth))
            else:
                stack.append((e.pid, depth + 1, e.rect))
    for pid, owners in data_refs.items():
        a.check_kind(pid, PageKind.DATA, "buddy.kind")
        page = a.store.peek(pid)
        points = [p for p, _ in page.records]
        a.check(
            bool(points),
            "buddy.data-empty",
            f"data page {pid} is empty (empty pages are freed)",
        )
        if len(owners) == 1:
            entry = owners[0][0]
            if points:
                got = Rect.bounding_points(points)
                a.check(
                    entry.rect == got,
                    "buddy.mbr-exact",
                    f"region {entry.rect} of data page {pid} is not the "
                    f"exact MBR {got} of its records",
                )
        else:
            holders = {npid for _, npid, _ in owners}
            a.check(
                len(holders) == 1,
                "buddy.share-node",
                f"data page {pid} is shared by entries of different "
                f"directory pages {sorted(holders)} (property 4 allows "
                "sharing only within one page)",
            )
            rects = [o[0].rect for o in owners]
            for p in points:
                a.check(
                    any(r.contains_point(p) for r in rects),
                    "buddy.share-cover",
                    f"record {p} on shared data page {pid} lies in no "
                    "sharing entry's region",
                )
        if len(page.records) > am._capacity:
            a.check(
                len(owners) == 1
                and am._split_records(page.records) is None,
                "buddy.data-capacity",
                f"data page {pid} holds {len(page.records)} records over "
                f"capacity {am._capacity} although a split is possible",
            )
        if am.balanced:
            for _, _, depth in owners:
                a.check(
                    depth == am._levels,
                    "buddy.balance",
                    f"data entry for page {pid} sits at directory level "
                    f"{depth}, expected {am._levels} (balanced variant)",
                )
    a.check_page_accounting(dir_pids | set(data_refs), pins)


# -- BANG file ------------------------------------------------------------


@register(BangFile)
def _audit_bang(a: Audit) -> None:
    am = a.am
    pins = {am._root_pid}
    dir_pids: set[int] = set()
    data_entries: dict[int, object] = {}  # data pid -> referencing entry
    leaf_blocks: dict[tuple, int] = {}
    stack = [(am._root_pid, 1, None)]
    while stack:
        pid, depth, ref_bits = stack.pop()
        if not a.check(
            pid not in dir_pids,
            "bang.dir-shared",
            f"directory page {pid} is referenced more than once",
        ):
            continue
        dir_pids.add(pid)
        a.check_kind(pid, PageKind.DIRECTORY, "bang.kind")
        node = a.store.peek(pid)
        if ref_bits is not None:
            a.check(
                node.bits == ref_bits,
                "bang.entry-block",
                f"directory page {pid} has block {node.bits}, its parent "
                f"entry says {ref_bits}",
            )
        if am._node_bytes(node) > am._dir_payload:
            a.check(
                am._choose_directory_split_block(node) is None,
                "bang.dir-capacity",
                f"directory page {pid} overflows ({am._node_bytes(node)} "
                f"bytes > {am._dir_payload}) although a split is possible",
            )
        if node.is_leaf:
            a.check(
                depth == am._height,
                "bang.balance",
                f"leaf directory page {pid} sits at level {depth}, "
                f"expected {am._height} (the directory is balanced)",
            )
        for e in node.entries:
            a.check(
                blocks.is_prefix(node.bits, e.bits),
                "bang.nesting",
                f"entry block {e.bits} is not nested in its directory "
                f"page's block {node.bits}",
            )
            if node.is_leaf:
                a.check(
                    e.bits not in leaf_blocks,
                    "bang.block-dup",
                    f"block {e.bits} appears in two leaf entries",
                )
                leaf_blocks[e.bits] = e.pid
                a.check(
                    e.pid not in data_entries,
                    "bang.page-shared",
                    f"data page {e.pid} is referenced by two leaf entries",
                )
                data_entries[e.pid] = e
            else:
                if am.minimal_regions:
                    child = a.store.peek(e.pid)
                    want = am._node_region(child)
                    a.check(
                        e.mbr == want,
                        "bang.region",
                        f"inner entry for page {e.pid} carries region "
                        f"{e.mbr}, exact child region is {want}",
                    )
                stack.append((e.pid, depth + 1, e.bits))
    mirror = dict(am._data_blocks)
    a.check(
        leaf_blocks == mirror,
        "bang.mirror",
        f"in-core block mirror disagrees with the directory: "
        f"{len(leaf_blocks)} leaf entries vs {len(mirror)} mirror entries",
    )
    for pid, e in data_entries.items():
        a.check_kind(pid, PageKind.DATA, "bang.kind")
        page = a.store.peek(pid)
        a.check(
            page.bits == e.bits,
            "bang.page-block",
            f"data page {pid} carries block {page.bits}, its entry says "
            f"{e.bits}",
        )
        if len(page.records) > am._capacity:
            a.check(
                am._choose_split_block(page) is None,
                "bang.data-capacity",
                f"data page {pid} holds {len(page.records)} records over "
                f"capacity {am._capacity} although a split is possible",
            )
        if am.minimal_regions:
            want = (
                Rect.bounding_points([p for p, _ in page.records])
                if page.records
                else None
            )
            a.check(
                e.mbr == want,
                "bang.region",
                f"leaf entry for page {pid} carries region {e.mbr}, exact "
                f"MBR is {want}",
            )
        for point, _rid in page.records:
            best_pid, _ = am._best_data_entry(am._point_bits(point))
            a.check(
                best_pid == pid,
                "bang.placement",
                f"record {point} lives on page {pid} but its longest "
                f"enclosing data block routes to page {best_pid} (nested "
                "block exclusion)",
            )
    a.check_page_accounting(dir_pids | set(data_entries), pins)


# -- hB-tree --------------------------------------------------------------


def _hb_route(am: HBTree, point) -> int:
    pid, is_data = am._root_pid, am._root_is_data
    for _ in range(128):
        if is_data:
            return pid
        node = am.store.peek(pid)
        leaf = am._walk(node.kd, point)
        pid, is_data = leaf.pid, leaf.is_data
    raise RuntimeError("routing did not terminate (cycle in the index graph)")


@register(HBTree)
def _audit_hb(a: Audit) -> None:
    am = a.am
    pins = {am._root_pid}
    if am._root_is_data:
        a.check_kind(am._root_pid, PageKind.DATA, "hb.kind")
        page = a.store.peek(am._root_pid)
        if len(page.records) > am._capacity:
            a.check(
                am._choose_data_split(page.records) is None,
                "hb.data-capacity",
                f"root data page holds {len(page.records)} records over "
                f"capacity {am._capacity} although a split is possible",
            )
        a.check_page_accounting({am._root_pid}, pins)
        return
    index_pids: set[int] = set()
    data_pids: set[int] = set()
    refs: dict[int, set[int]] = {}
    stack = [am._root_pid]
    while stack:
        pid = stack.pop()
        if pid in index_pids:
            continue
        index_pids.add(pid)
        a.check_kind(pid, PageKind.DIRECTORY, "hb.kind")
        node = a.store.peek(pid)
        leaves = am._kd_leaves(node.kd)
        if am._kd_bytes(node.kd) > am._index_payload:
            a.check(
                len(leaves) < 3,
                "hb.index-capacity",
                f"index page {pid} overflows ({am._kd_bytes(node.kd)} "
                f"bytes > {am._index_payload}) with {len(leaves)} kd-tree "
                "leaves although a split needs only 3",
            )
        for leaf in leaves:
            refs.setdefault(leaf.pid, set()).add(pid)
            if leaf.is_data:
                data_pids.add(leaf.pid)
            else:
                stack.append(leaf.pid)
            if am.minimal_regions:
                want = am._node_mbr(leaf.pid, leaf.is_data)
                a.check(
                    leaf.mbr == want,
                    "hb.region",
                    f"kd-leaf for page {leaf.pid} carries region "
                    f"{leaf.mbr}, exact region is {want}",
                )
    for child, parents in refs.items():
        recorded = am._parents.get(child, set())
        a.check(
            recorded == parents,
            "hb.parents",
            f"parent registry for page {child} records {sorted(recorded)}, "
            f"the index graph references it from {sorted(parents)}",
        )
    stale = {c for c, ps in am._parents.items() if ps and c not in refs}
    a.check(
        not stale,
        "hb.parents-stale",
        f"parent registry holds entries for unreferenced pages "
        f"{sorted(stale)}",
    )
    for pid in data_pids:
        a.check_kind(pid, PageKind.DATA, "hb.kind")
        data = a.store.peek(pid)
        if len(data.records) > am._capacity:
            a.check(
                am._choose_data_split(data.records) is None,
                "hb.data-capacity",
                f"data page {pid} holds {len(data.records)} records over "
                f"capacity {am._capacity} although a split is possible",
            )
        for point, _rid in data.records:
            try:
                home = _hb_route(am, point)
            except RuntimeError as exc:
                a.check(False, "hb.routing", f"routing {point}: {exc}")
                continue
            a.check(
                home == pid,
                "hb.routing",
                f"record {point} lives on page {pid} but the kd-tree "
                f"cascade routes it to page {home}",
            )
    a.check_page_accounting(index_pids | data_pids, pins)


# -- kd-B-tree ------------------------------------------------------------


@register(KdBTree)
def _audit_kdb(a: Audit) -> None:
    am = a.am
    pins = {am._root_pid}
    reachable: set[int] = set()
    leaf_depths: set[int] = set()
    stack = [(am._root_pid, am._root_is_leaf, Rect.unit(am.dims), 1)]
    while stack:
        pid, is_leaf, region, depth = stack.pop()
        reachable.add(pid)
        if is_leaf:
            leaf_depths.add(depth)
            a.check_kind(pid, PageKind.DATA, "kdb.kind")
            page = a.store.peek(pid)
            if len(page.records) > am._capacity:
                a.check(
                    am._choose_point_plane(page.records, region) is None,
                    "kdb.data-capacity",
                    f"point page {pid} holds {len(page.records)} records "
                    f"over capacity {am._capacity} although a split is "
                    "possible",
                )
            for point, _rid in page.records:
                a.check(
                    am._region_contains(region, point),
                    "kdb.placement",
                    f"record {point} lies outside its page's region "
                    f"{region}",
                )
        else:
            a.check_kind(pid, PageKind.DIRECTORY, "kdb.kind")
            node = a.store.peek(pid)
            a.check(
                len(node.rects) == len(node.pids),
                "kdb.arity",
                f"region page {pid} has {len(node.rects)} regions for "
                f"{len(node.pids)} children",
            )
            a.check(
                len(node.pids) <= am._fanout,
                "kdb.fanout",
                f"region page {pid} holds {len(node.pids)} children, "
                f"fanout {am._fanout}",
            )
            _check_partition(a, region, node.rects, "kdb")
            for rect, child in zip(node.rects, node.pids):
                stack.append((child, node.leaf_children, rect, depth + 1))
    a.check(
        leaf_depths == {am._height + 1},
        "kdb.balance",
        f"point pages found at levels {sorted(leaf_depths)}, expected all "
        f"at {am._height + 1}",
    )
    a.check_page_accounting(reachable, pins)


# -- zkd-B-tree -----------------------------------------------------------


@register(ZOrderBTree)
def _audit_zb(a: Audit) -> None:
    am = a.am
    reachable = check_bplus_tree(a, am._tree, "zb")
    a.check_page_accounting(reachable, {am._tree.root_pid})
    for key, (point, _rid) in am._tree.iter_items():
        want = am._z(point)
        a.check(
            key == want,
            "zb.z-key",
            f"record {point} is stored under z-value {key}, its Morton "
            f"code is {want} (z-order monotonicity)",
        )


# -- PLOP hashing (and quantile hashing) ----------------------------------


@register(PlopHashing)
def _audit_plop(a: Audit) -> None:
    am = a.am
    reachable = check_plop_grid(a, am._grid, "plop")
    a.check_page_accounting(reachable, set())


# -- grid files -----------------------------------------------------------


def _audit_grid_pages(a: Audit, am, layer, prefix: str, where: str = "") -> set[int]:
    """Data-page checks shared by the grid-file family; returns pids."""
    tag = f" {where}" if where else ""
    pids = set(layer.boxes)
    for pid in pids:
        a.check_kind(pid, PageKind.DATA, f"{prefix}.kind")
        page = a.store.peek(pid)
        a.check(
            len(page.records) <= am._capacity,
            f"{prefix}.capacity",
            f"data page {pid}{tag} holds {len(page.records)} records, "
            f"capacity {am._capacity} (grid files always split on "
            "overflow)",
        )
        for point, _rid in page.records:
            home = layer.payload_of_point(point)
            a.check(
                home == pid,
                f"{prefix}.placement",
                f"record {point}{tag} lives on page {pid} but the grid "
                f"routes it to page {home}",
            )
    return pids


def _ceil_div(n: int, d: int) -> int:
    return -(-n // d)


@register(GridFile)
def _audit_gridfile(a: Audit) -> None:
    am = a.am
    layer = am._layer
    check_grid_layer(a, layer, "grid")
    data_pids = _audit_grid_pages(a, am, layer, "grid")
    want_dir = _ceil_div(layer.total_cells(), am._dir_cells_per_page)
    a.check(
        len(am._dir_pages) == want_dir,
        "grid.dir-count",
        f"{len(am._dir_pages)} directory pages for "
        f"{layer.total_cells()} cells, expected {want_dir}",
    )
    for pid in am._dir_pages:
        a.check_kind(pid, PageKind.DIRECTORY, "grid.kind")
    a.check_page_accounting(data_pids | set(am._dir_pages), set())


@register(TwinGridFile)
def _audit_twingrid(a: Audit) -> None:
    am = a.am
    reachable: set[int] = set()
    for which, layer in enumerate(am._layers):
        prefix = "twin.primary" if which == 0 else "twin.twin"
        check_grid_layer(a, layer, prefix)
        reachable |= _audit_grid_pages(a, am, layer, prefix)
        want_dir = _ceil_div(layer.total_cells(), am._dir_cells_per_page)
        a.check(
            len(am._dir_pages[which]) == want_dir,
            f"{prefix}.dir-count",
            f"{len(am._dir_pages[which])} directory pages for "
            f"{layer.total_cells()} cells, expected {want_dir}",
        )
        for pid in am._dir_pages[which]:
            a.check_kind(pid, PageKind.DIRECTORY, f"{prefix}.kind")
        reachable |= set(am._dir_pages[which])
    a.check_page_accounting(reachable, set())


@register(TwoLevelGridFile)
def _audit_twolevelgrid(a: Audit) -> None:
    am = a.am
    root = am._root
    check_grid_layer(a, root, "grid2.root")
    reachable: set[int] = set()
    for spid in root.boxes:
        reachable.add(spid)
        a.check_kind(spid, PageKind.DIRECTORY, "grid2.kind")
        sub = a.store.peek(spid)
        check_grid_layer(a, sub.layer, "grid2.sub", where=f"subgrid {spid}")
        a.check(
            root.box_rect(spid) == sub.layer.region,
            "grid2.region",
            f"root directory assigns subgrid {spid} the region "
            f"{root.box_rect(spid)}, the subgrid covers "
            f"{sub.layer.region}",
        )
        a.check(
            sub.layer.byte_size() <= am._subgrid_payload,
            "grid2.sub-size",
            f"subgrid {spid} needs {sub.layer.byte_size()} bytes, one "
            f"directory page holds {am._subgrid_payload}",
        )
        for dpid in _audit_grid_pages(
            a, am, sub.layer, "grid2", where=f"subgrid {spid}"
        ):
            reachable.add(dpid)
            page = a.store.peek(dpid)
            for point, _rid in page.records:
                a.check(
                    root.payload_of_point(point) == spid,
                    "grid2.routing",
                    f"record {point} lives under subgrid {spid} but the "
                    f"root directory routes it to subgrid "
                    f"{root.payload_of_point(point)}",
                )
    a.check_page_accounting(reachable, set())


# -- R-tree ---------------------------------------------------------------


@register(RTree)
def _audit_rtree(a: Audit) -> None:
    am = a.am
    pins = {am._root_pid}
    reachable: set[int] = set()
    leaf_depths: set[int] = set()
    stack = [(am._root_pid, 1, None)]
    while stack:
        pid, depth, ref_rect = stack.pop()
        reachable.add(pid)
        node = a.store.peek(pid)
        a.check_kind(
            pid,
            PageKind.DATA if node.is_leaf else PageKind.DIRECTORY,
            "rtree.kind",
        )
        a.check(
            len(node.rects) == len(node.children),
            "rtree.arity",
            f"node {pid} has {len(node.rects)} rectangles for "
            f"{len(node.children)} children",
        )
        a.check(
            len(node.rects) <= am._capacity,
            "rtree.capacity",
            f"node {pid} holds {len(node.rects)} entries, capacity "
            f"{am._capacity}",
        )
        if pid != am._root_pid:
            a.check(
                len(node.rects) >= am._min_entries,
                "rtree.min-fill",
                f"non-root node {pid} holds {len(node.rects)} entries, "
                f"minimum fill is {am._min_entries}",
            )
        elif not node.is_leaf:
            a.check(
                len(node.children) >= 2,
                "rtree.root",
                f"non-leaf root holds {len(node.children)} children "
                "(a one-child root is collapsed)",
            )
        if ref_rect is not None and node.rects:
            got = Rect.bounding(node.rects)
            a.check(
                ref_rect == got,
                "rtree.mbr-exact",
                f"parent entry for node {pid} carries {ref_rect}, the "
                f"exact MBR of the node is {got}",
            )
        if node.is_leaf:
            leaf_depths.add(depth)
        else:
            for rect, child in zip(node.rects, node.children):
                stack.append((child, depth + 1, rect))
    a.check(
        leaf_depths == {am._height + 1},
        "rtree.balance",
        f"leaves found at levels {sorted(leaf_depths)}, expected all at "
        f"{am._height + 1}",
    )
    a.check_page_accounting(reachable, pins)


# -- R+-tree --------------------------------------------------------------


def _rplus_requires(rect: Rect, region: Rect, dims: int) -> bool:
    """Whether clipping must place an entry for ``rect`` in ``region``.

    Open-overlap on every axis; a degenerate axis of the rectangle must
    lie strictly inside the region (boundary-touching degenerate rects
    are assigned to exactly one side by the split rule).
    """
    for axis in range(dims):
        if rect.lo[axis] == rect.hi[axis]:
            if not (region.lo[axis] < rect.lo[axis] < region.hi[axis]):
                return False
        elif not (
            rect.lo[axis] < region.hi[axis] and rect.hi[axis] > region.lo[axis]
        ):
            return False
    return True


def _rplus_required_leaves(am: RPlusTree, rect: Rect) -> list[int]:
    found: list[int] = []
    stack = [(am._root_pid, am._root_is_leaf, Rect.unit(am.dims))]
    while stack:
        pid, is_leaf, region = stack.pop()
        if not _rplus_requires(rect, region, am.dims):
            continue
        if is_leaf:
            found.append(pid)
        else:
            node = am.store.peek(pid)
            for child_region, child in zip(node.regions, node.pids):
                stack.append((child, node.leaf_children, child_region))
    return found


@register(RPlusTree)
def _audit_rplus(a: Audit) -> None:
    am = a.am
    pins = {am._root_pid}
    reachable: set[int] = set()
    leaf_depths: set[int] = set()
    leaf_rids: dict[int, set] = {}
    rid_rects: dict[object, Rect] = {}
    stack = [(am._root_pid, am._root_is_leaf, Rect.unit(am.dims), 1)]
    while stack:
        pid, is_leaf, region, depth = stack.pop()
        reachable.add(pid)
        if is_leaf:
            leaf_depths.add(depth)
            a.check_kind(pid, PageKind.DATA, "rplus.kind")
            leaf = a.store.peek(pid)
            a.check(
                len(leaf.rects) == len(leaf.rids),
                "rplus.arity",
                f"leaf {pid} has {len(leaf.rects)} rectangles for "
                f"{len(leaf.rids)} rids",
            )
            if len(leaf.rects) > am._capacity:
                a.check(
                    am._choose_leaf_plane(leaf, region) is None,
                    "rplus.capacity",
                    f"leaf {pid} holds {len(leaf.rects)} entries over "
                    f"capacity {am._capacity} although a split plane "
                    "exists",
                )
            leaf_rids[pid] = set(leaf.rids)
            for rect, rid in zip(leaf.rects, leaf.rids):
                a.check(
                    rect.intersects(region),
                    "rplus.entry-region",
                    f"entry {rect} in leaf {pid} does not meet the "
                    f"leaf's region {region}",
                )
                if rid in rid_rects:
                    a.check(
                        rid_rects[rid] == rect,
                        "rplus.rid-rect",
                        f"rid {rid!r} is stored with different rectangles "
                        f"({rid_rects[rid]} vs {rect})",
                    )
                else:
                    rid_rects[rid] = rect
        else:
            a.check_kind(pid, PageKind.DIRECTORY, "rplus.kind")
            node = a.store.peek(pid)
            a.check(
                len(node.regions) == len(node.pids),
                "rplus.arity",
                f"inner node {pid} has {len(node.regions)} regions for "
                f"{len(node.pids)} children",
            )
            a.check(
                len(node.pids) <= am._fanout,
                "rplus.fanout",
                f"inner node {pid} holds {len(node.pids)} children, "
                f"fanout {am._fanout}",
            )
            _check_partition(a, region, node.regions, "rplus")
            for child_region, child in zip(node.regions, node.pids):
                stack.append((child, node.leaf_children, child_region, depth + 1))
    a.check(
        leaf_depths == {am._height + 1},
        "rplus.balance",
        f"leaves found at levels {sorted(leaf_depths)}, expected all at "
        f"{am._height + 1}",
    )
    for rid, rect in rid_rects.items():
        for pid in _rplus_required_leaves(am, rect):
            a.check(
                rid in leaf_rids.get(pid, set()),
                "rplus.clipping",
                f"rid {rid!r} with rect {rect} must appear in leaf {pid} "
                "(its region open-overlaps the rect) but does not",
            )
    a.check_page_accounting(reachable, pins)


# -- transformation SAM ---------------------------------------------------


@register(TransformationSAM)
def _audit_transformation(a: Audit) -> None:
    am = a.am
    for v in run_audit(am.pam):
        a.violations.append(
            Violation(
                f"transform.{v.code}",
                f"(inner {type(am.pam).__name__}) {v.message}",
            )
        )
    a.check(
        len(am) == len(am.pam),
        "transform.count",
        f"SAM counts {len(am)} rectangles, the inner PAM holds "
        f"{len(am.pam)} points",
    )
    for point, _rid in am.pam.iter_records():
        try:
            rect = am._to_rect(point)
        except Exception as exc:  # noqa: BLE001 - an invalid point is a finding
            a.check(
                False,
                "transform.roundtrip",
                f"stored point {point} does not map back to a rectangle: "
                f"{exc!r}",
            )
            continue
        a.check(
            all(0.0 <= lo <= hi <= 1.0 for lo, hi in zip(rect.lo, rect.hi)),
            "transform.unit",
            f"stored point {point} maps to {rect}, outside the unit cube",
        )
        # _max_extent is maintained unconditionally (queries may use it),
        # so it must bound every stored rectangle either way.
        _half_extents_bounded(a, am, rect, "transform.extent")


# -- clipping SAM ---------------------------------------------------------


@register(ClippingSAM)
def _audit_clipping(a: Audit) -> None:
    am = a.am
    reachable = check_bplus_tree(a, am._tree, "clip")
    a.check_page_accounting(reachable, {am._tree.root_pid})
    pairs = list(am._tree.iter_items())
    a.check(
        len(pairs) == am._region_entries,
        "clip.region-count",
        f"tree holds {len(pairs)} region entries, the counter says "
        f"{am._region_entries}",
    )
    by_rid: dict[object, tuple[Rect, list]] = {}
    for key, (rect, rid) in pairs:
        if rid in by_rid:
            a.check(
                by_rid[rid][0] == rect,
                "clip.rid-rect",
                f"rid {rid!r} is stored with different rectangles "
                f"({by_rid[rid][0]} vs {rect})",
            )
            by_rid[rid][1].append(key)
        else:
            by_rid[rid] = (rect, [key])
    for rid, (rect, keys) in by_rid.items():
        a.check(
            1 <= len(keys) <= am.redundancy,
            "clip.redundancy",
            f"rid {rid!r} is stored under {len(keys)} z-regions, allowed "
            f"range is 1..{am.redundancy}",
        )
        want = {
            am._key(bits)
            for bits in decompose_rect(
                rect, am.dims, am.redundancy, _CLIP_MAX_DEPTH
            )
        }
        a.check(
            len(keys) == len(set(keys)) and set(keys) == want,
            "clip.decomposition",
            f"rid {rid!r} is stored under keys {sorted(keys)}, its "
            f"deterministic decomposition gives {sorted(want)}",
        )


# -- overlapping-regions SAM ----------------------------------------------


@register(OverlappingPlop)
def _audit_overlapping(a: Audit) -> None:
    am = a.am
    reachable = check_plop_grid(a, am._grid, "oplop")
    a.check_page_accounting(reachable, set())
    for rect, _rid in am._grid.iter_all():
        _half_extents_bounded(a, am, rect, "oplop.extent")
