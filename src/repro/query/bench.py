"""``python -m repro.query.bench`` — the scalar vs vectorized A/B harness.

Runs the full §3/§7 query workload twice against every structure of the
fuzz matrix (:data:`repro.verify.fuzz.STRUCTURES`) — once with the
columnar caches disabled (the original scalar scan loops) and once with
the vectorized execution layer — and verifies that every per-query
disk-access count and every per-query result list is **bit-identical**
across the two passes.  Each pass builds its structures from scratch, so
path-buffer state cannot leak between modes.

The identity matrix runs at two page sizes: the paper's 512-byte pages
(the canonical testbed configuration) and the larger bench page size.
Timing is reported from the bench page size, where a page holds a few
hundred records and in-page predicate work dominates; at 512 bytes a page
holds ~20 records and Python traversal overhead bounds the achievable
gain (those numbers are recorded too, as ``per_structure_paper``).  The
headline ``speedup`` is aggregated over the structures of the standard
comparison driver (:data:`DRIVER_STRUCTURES`).

It then repeats the standard testbed comparison under a tracer in both
modes, saves the two :class:`~repro.obs.export.RunReport` files, and
records wall-clock numbers in ``results/BENCH_QUERY.json``::

    PYTHONPATH=src python -m repro.query.bench --scale 2000

CI diffs the two reports with ``python -m repro.obs.report`` and a zero
fail-threshold: any access-count drift between the scalar and vectorized
paths fails the build.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.comparison import PAM_QUERY_TYPES
from repro.core.testbed import standard_pam_factories, standard_sam_factories
from repro.obs.runner import traced_pam_run, traced_sam_run
from repro.query.driver import run_query_file
from repro.storage.pagestore import PageStore
from repro.verify.fuzz import STRUCTURES, _point_pool, _rect_pool
from repro.workloads.distributions import generate_point_file
from repro.workloads.rect_distributions import generate_rect_file
from repro.workloads.queries import (
    RANGE_QUERY_VOLUMES,
    generate_partial_match_queries,
    generate_range_queries,
    generate_rect_query_workload,
)

__all__ = [
    "BENCH_SCHEMA",
    "DRIVER_STRUCTURES",
    "PAPER_PAGE_SIZE",
    "query_pass",
    "run_identity_matrix",
    "main",
    "results_dir",
]

#: Schema identifier of results/BENCH_QUERY.json.
BENCH_SCHEMA = "repro.query/bench/v1"

#: Fuzz-matrix names of the structures the standard comparison driver runs
#: (testbed PAMs incl. the packed BUDDY+ derivation, and the four SAMs) —
#: the subset the headline speedup aggregates over.
DRIVER_STRUCTURES = (
    "HB",
    "BANG",
    "BANG*",
    "GRID",
    "BUDDY",
    "BUDDY+",
    "R",
    "T-BANG",
    "T-BUDDY",
    "PLOP-SAM",
)

#: The paper's page size — identity always runs here too.
PAPER_PAGE_SIZE = 512


def results_dir() -> Path:
    """The repo's ``results/`` directory (falls back to ``./results``)."""
    for parent in Path(__file__).resolve().parents:
        if (parent / "results").is_dir() or (parent / "pyproject.toml").is_file():
            return parent / "results"
    return Path.cwd() / "results"


def _run_workload(method, kind: str) -> list[tuple[str, list]]:
    """The full query workload of one structure as ``(label, outcomes)``.

    Outcomes are the driver's per-query ``(cost, result)`` pairs — the
    exact material the identity check compares across modes.
    """
    files: list[tuple[str, list]] = []
    if kind == "pam":
        for label, volume in zip(PAM_QUERY_TYPES[:3], RANGE_QUERY_VOLUMES):
            queries = generate_range_queries(volume, seed=101)
            files.append(
                (label, run_query_file(method, "range", queries, method.range_query))
            )
        for label, axis in (("pm_x", 0), ("pm_y", 1)):
            queries = generate_partial_match_queries(axis, seed=103)
            files.append(
                (label, run_query_file(method, "pm", queries, method.partial_match))
            )
        return files
    workload = generate_rect_query_workload(seed=107)
    files.append(
        ("point", run_query_file(method, "point", workload["points"], method.point_query))
    )
    for label, operation in (
        ("intersection", method.intersection),
        ("enclosure", method.enclosure),
        ("containment", method.containment),
    ):
        files.append(
            (label, run_query_file(method, label, workload["rectangles"], operation))
        )
    return files


def query_pass(
    name: str, spec: dict, data, page_size: int, vector: bool
) -> tuple[list[tuple[str, list]], float, str]:
    """Build one structure from scratch and run its query workload.

    Returns ``(outcomes, query_seconds, final store stats)``.  The build
    is inside the pass so the search-path buffer enters the query phase
    in the same state in both modes.
    """
    store = PageStore(page_size, vector=vector)
    method = spec["factory"](store)
    for rid, item in enumerate(data):
        method.insert(item, rid)
    if name == "BUDDY+":
        method.pack()
    start = time.perf_counter()
    outcomes = _run_workload(method, spec["kind"])
    seconds = time.perf_counter() - start
    return outcomes, seconds, repr(store.stats.snapshot())


def run_identity_matrix(
    scale: int, page_size: int = 512, seed: int = 4242, repeat: int = 1
) -> tuple[dict, list[str]]:
    """A/B the whole structure matrix; returns ``(timings, mismatches)``.

    ``repeat`` re-times each structure's query phase that many times per
    mode and keeps the per-structure minimum — outcomes and statistics
    are compared on the first repetition only (they are deterministic;
    extra repetitions exist purely to shed scheduler noise from the
    wall-clock numbers, which matters when CI gates on a speedup floor).
    """
    points = _point_pool(scale, seed)
    rects = _rect_pool(scale, seed + 1)
    timings: dict[str, dict[str, float]] = {}
    mismatches: list[str] = []
    for name, spec in STRUCTURES.items():
        data = points if spec["kind"] == "pam" else rects
        scalar, scalar_s, scalar_stats = query_pass(name, spec, data, page_size, False)
        vector, vector_s, vector_stats = query_pass(name, spec, data, page_size, True)
        for _ in range(repeat - 1):
            _, s_again, _ = query_pass(name, spec, data, page_size, False)
            _, v_again, _ = query_pass(name, spec, data, page_size, True)
            scalar_s = min(scalar_s, s_again)
            vector_s = min(vector_s, v_again)
        timings[name] = {
            "scalar_seconds": scalar_s,
            "vector_seconds": vector_s,
            "speedup": scalar_s / vector_s if vector_s else float("inf"),
        }
        if scalar_stats != vector_stats:
            mismatches.append(f"{name}: store totals differ ({scalar_stats} vs {vector_stats})")
        for (label, a), (_, b) in zip(scalar, vector):
            for i, ((cost_a, hits_a), (cost_b, hits_b)) in enumerate(zip(a, b)):
                if cost_a != cost_b:
                    mismatches.append(
                        f"{name}/{label}[{i}]: cost {cost_a} (scalar) != {cost_b} (vector)"
                    )
                if hits_a != hits_b:
                    mismatches.append(
                        f"{name}/{label}[{i}]: results differ "
                        f"({len(hits_a)} scalar vs {len(hits_b)} vector hits)"
                    )
    return timings, mismatches


def _write_reports(scale: int, page_size: int, out_dir: Path) -> dict[str, str]:
    """Standard-testbed RunReports in both modes, for the CI diff gate."""
    points = generate_point_file("uniform", scale, seed=1)
    rects = generate_rect_file("uniform_small", scale, seed=2)
    paths: dict[str, str] = {}
    for mode, vector in (("scalar", False), ("vector", True)):
        _, pam_report = traced_pam_run(
            standard_pam_factories(),
            points,
            label=f"query bench PAM ({mode})",
            page_size=page_size,
            vector=vector,
        )
        _, sam_report = traced_sam_run(
            standard_sam_factories(),
            rects,
            label=f"query bench SAM ({mode})",
            page_size=page_size,
            vector=vector,
        )
        pam_path = out_dir / f"BENCH_QUERY_pam_{mode}.json"
        sam_path = out_dir / f"BENCH_QUERY_sam_{mode}.json"
        pam_report.save(pam_path)
        sam_report.save(sam_path)
        paths[f"pam_{mode}"] = str(pam_path)
        paths[f"sam_{mode}"] = str(sam_path)
    return paths


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.query.bench",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--scale", type=int, default=2000, help="records per build")
    parser.add_argument(
        "--page-size",
        type=int,
        default=8192,
        help="bench page size for the timed matrix (identity also runs at 512)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="time each structure's query phase N times per mode and keep "
        "the minimum (identity is checked on the first repetition)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail (exit 2) if the comparison-driver speedup is below this factor",
    )
    parser.add_argument(
        "--skip-paper-identity",
        action="store_true",
        help="skip the extra identity matrix at the paper's 512-byte pages",
    )
    parser.add_argument(
        "--skip-reports",
        action="store_true",
        help="skip the traced standard-testbed RunReport pair",
    )
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="record the run to the performance ledger (a path, or '1' for "
        "results/LEDGER.jsonl; default: off unless REPRO_LEDGER is set)",
    )
    args = parser.parse_args(argv)

    out_dir = args.out.parent if args.out else results_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = args.out or out_dir / "BENCH_QUERY.json"

    timings, mismatches = run_identity_matrix(
        args.scale, args.page_size, repeat=args.repeat
    )
    paper_timings: dict[str, dict[str, float]] = {}
    if not args.skip_paper_identity and args.page_size != PAPER_PAGE_SIZE:
        paper_timings, paper_mismatches = run_identity_matrix(
            args.scale, PAPER_PAGE_SIZE, repeat=args.repeat
        )
        mismatches += [f"[page {PAPER_PAGE_SIZE}] {m}" for m in paper_mismatches]

    scalar_total = sum(t["scalar_seconds"] for t in timings.values())
    vector_total = sum(t["vector_seconds"] for t in timings.values())
    matrix_speedup = scalar_total / vector_total if vector_total else float("inf")
    driver_scalar = sum(timings[k]["scalar_seconds"] for k in DRIVER_STRUCTURES)
    driver_vector = sum(timings[k]["vector_seconds"] for k in DRIVER_STRUCTURES)
    speedup = driver_scalar / driver_vector if driver_vector else float("inf")

    report_paths = {}
    if not args.skip_reports:
        report_paths = _write_reports(args.scale, PAPER_PAGE_SIZE, out_dir)

    payload = {
        "schema": BENCH_SCHEMA,
        "scale": args.scale,
        "page_size": args.page_size,
        "repeat": args.repeat,
        "paper_page_size": PAPER_PAGE_SIZE,
        "structures": len(timings),
        "driver_structures": list(DRIVER_STRUCTURES),
        "identical": not mismatches,
        "mismatches": mismatches,
        "scalar_seconds": driver_scalar,
        "vector_seconds": driver_vector,
        "speedup": speedup,
        "matrix_scalar_seconds": scalar_total,
        "matrix_vector_seconds": vector_total,
        "matrix_speedup": matrix_speedup,
        "per_structure": timings,
        "per_structure_paper": paper_timings,
        "reports": report_paths,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    out_path.write_text(json.dumps(payload, indent=1) + "\n")

    from repro.obs.ledger import entry_from_bench_document, resolve_ledger

    ledger = resolve_ledger(args.ledger)
    if ledger is not None:
        entry = ledger.record(
            entry_from_bench_document(payload, path=str(out_path))
        )
        print(f"  ledger: recorded {entry.run_id} -> {ledger.path}")

    print(
        f"query A/B over {len(timings)} structures at scale {args.scale}, "
        f"page size {args.page_size}:"
    )
    print(f"  matrix  scalar {scalar_total:8.3f}s  vector {vector_total:8.3f}s   "
          f"({matrix_speedup:.2f}x)")
    print(f"  driver  scalar {driver_scalar:8.3f}s  vector {driver_vector:8.3f}s   "
          f"({speedup:.2f}x)")
    print(f"  wrote {out_path}")
    if mismatches:
        print(f"FAIL: {len(mismatches)} scalar/vector mismatches", file=sys.stderr)
        for line in mismatches[:20]:
            print(f"  {line}", file=sys.stderr)
        return 2
    print("  all per-query access counts and results bit-identical")
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"FAIL: driver speedup {speedup:.2f}x below required "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
