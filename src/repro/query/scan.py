"""In-page scan helpers shared by every access method.

Each helper replaces one scalar filtering loop inside an already-visited
page.  Three tiers, chosen per call:

1. **No columnar cache** (``store.columnar is None``, the ``REPRO_VECTOR=0``
   kill switch) — run the original scalar loop, byte-for-byte the old code.
2. **Single query** — evaluate the page's cached fused array against this
   one query with a single comparison kernel
   (see :mod:`repro.geometry.kernels`).
3. **Batched workload** — the query box matches the one the driver
   registered, so the page answers from the workload's per-query hit-index
   cache, which evaluates the page against *all* queries of the batch in
   one ``(Q, n)`` kernel call once the page proves hot (see
   :class:`repro.query.columnar.QueryWorkload`).

All tiers agree exactly (tests/test_query_kernels.py), and none of them
touches the page store, so disk-access statistics cannot change.  Helpers
return selected indices as ascending Python lists — callers iterating them
preserve the scalar visit order, and for 512-byte pages (tens of rows)
list extraction beats ``np.nonzero`` by several microseconds per page.

The bodies below are deliberately flat: cache probes, the workload match
test and the fused comparison are inlined rather than layered behind
helper calls, because at ~20 records per page each Python frame and
closure allocation is a measurable fraction of a page visit.  Index lists
returned from the workload cache are shared — callers must not mutate
them.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.geometry.rect import Rect
from repro.storage.soa import SoAList, fused_points

__all__ = [
    "match_records",
    "select_bounds",
    "select_boxes",
    "select_rect_values",
    "match_rects",
]

#: op tag -> fused page-array family: intersection and enclosure share the
#: ``[lo, -hi]`` encoding, containment needs ``[-lo, hi]``.
_FAMILY = {"isect": "cover", "encl": "cover", "within": "anti"}

_EMPTY_IDX: list = []


def _qvec_single(op: str, query: Rect) -> np.ndarray:
    """The fused ``(2d,)`` query vector of one box for ``op``.

    Pure sign flips of the query corners — exact in IEEE-754, so a fused
    comparison is bit-identical to the pairwise predicate (see
    :mod:`repro.geometry.kernels`).
    """
    if op == "isect":
        vals = query.hi + tuple(-c for c in query.lo)
    elif op == "within":
        vals = tuple(-c for c in query.lo) + query.hi
    else:  # "encl"
        vals = query.lo + tuple(-c for c in query.hi)
    return np.array(vals)


def match_records(
    store,
    pid: int,
    records: Sequence[tuple[tuple[float, ...], Any]],
    rect: Rect,
    start: int = 0,
    stop: "int | None" = None,
) -> list:
    """Records of a data page whose point lies inside ``rect``.

    ``records`` is the page's ``(point, rid)`` list; ``start``/``stop``
    restrict the scan to a slice (B+-tree leaves scan key ranges).
    """
    n = len(records)
    if stop is None:
        stop = n
    cache = store.columnar
    if cache is None or n == 0:
        return [rec for rec in records[start:stop] if rect.contains_point(rec[0])]
    if type(records) is SoAList:
        # Canonical struct-of-arrays payload: the fused array lives on the
        # page container itself and survives unrelated page writes.
        fused = records.view("pts", fused_points)
    else:
        pages = cache._pages
        page = pages.get(pid)
        if page is None:
            page = pages[pid] = {}
        fused = page.get("pts")
        if fused is not None and fused.shape[0] != n:
            # Defensive: every mutation path issues store.write(pid) (which
            # invalidates), so drift means a page was rebound without a
            # write; rebuilding keeps the vector path correct even then.
            cache.invalidate(pid)
            page = pages[pid] = {}
            fused = None
        if fused is None:
            pts = np.array([rec[0] for rec in records])
            fused = page["pts"] = np.concatenate([-pts, pts], axis=1)
    workload = cache.workload
    if workload is not None:
        cur = workload.current
        if cur is not None and (cur is rect or cur == rect):
            idx = workload.index_row(pid, "pts", "pts", fused)
            if start or stop != n:
                return [records[i] for i in idx if start <= i < stop]
            return [records[i] for i in idx]
    qvec = np.array(tuple(-c for c in rect.lo) + rect.hi)
    flags = (fused <= qvec).all(axis=1).tolist()
    if start or stop != n:
        return [rec for rec, hit in zip(records[start:stop], flags[start:stop]) if hit]
    return [rec for rec, hit in zip(records, flags) if hit]


def select_bounds(
    store,
    pid: int,
    tag: str,
    count: int,
    bounds_fn,
    op: str,
    query: Rect,
) -> "list | None":
    """Indices of a page's boxes satisfying ``op`` against ``query``.

    ``bounds_fn`` materialises the page's ``(lo, hi)`` bound arrays only on
    a cache miss; rows may be NaN to mark entries that can never match
    (NaN compares false in every kernel).  Returns ``None`` when the store
    has no columnar cache — the caller must then run its original scalar
    loop.  Indices are an ascending list, so callers iterating them
    preserve the scalar visit order exactly.
    """
    cache = store.columnar
    if cache is None:
        return None
    if count == 0:
        return _EMPTY_IDX
    family = _FAMILY[op]
    pages = cache._pages
    page = pages.get(pid)
    if page is None:
        page = pages[pid] = {}
    ptag = tag + ":" + family
    fused = page.get(ptag)
    if fused is not None and fused.shape[0] != count:
        cache.invalidate(pid)
        page = pages[pid] = {}
        fused = None
    if fused is None:
        lo, hi = bounds_fn()
        if family == "cover":
            fused = np.concatenate([lo, -hi], axis=1)
        else:
            fused = np.concatenate([-lo, hi], axis=1)
        page[ptag] = fused
    workload = cache.workload
    if workload is not None:
        cur = workload.current
        if cur is not None and (cur is query or cur == query):
            return workload.index_row(pid, tag + ":" + op, op, fused)
    flags = (fused <= _qvec_single(op, query)).all(axis=1).tolist()
    return [i for i, hit in enumerate(flags) if hit]


def select_boxes(
    store,
    pid: int,
    tag: str,
    count: int,
    rects_fn,
    op: str,
    query: Rect,
) -> "list | None":
    """:func:`select_bounds` over a page holding a list of :class:`Rect`."""

    def build():
        rects = rects_fn()
        lo = np.array([r.lo for r in rects])
        hi = np.array([r.hi for r in rects])
        return lo, hi

    return select_bounds(store, pid, tag, count, build, op, query)


def select_rect_values(
    store,
    pid: int,
    values: Sequence[tuple[Rect, Any]],
    op: str,
    query: Rect,
    start: int = 0,
    stop: "int | None" = None,
) -> "list | None":
    """Indices into ``values`` (a ``(rect, rid)`` list) matching ``op``.

    Slice-aware like :func:`match_records`; returns absolute indices, or
    ``None`` for the scalar fallback.
    """
    cache = store.columnar
    if cache is None:
        return None
    n = len(values)
    if stop is None:
        stop = n
    if n == 0:
        return _EMPTY_IDX
    family = _FAMILY[op]
    pages = cache._pages
    page = pages.get(pid)
    if page is None:
        page = pages[pid] = {}
    ptag = "vrects:" + family
    fused = page.get(ptag)
    if fused is not None and fused.shape[0] != n:
        cache.invalidate(pid)
        page = pages[pid] = {}
        fused = None
    if fused is None:
        lo = np.array([v[0].lo for v in values])
        hi = np.array([v[0].hi for v in values])
        if family == "cover":
            fused = np.concatenate([lo, -hi], axis=1)
        else:
            fused = np.concatenate([-lo, hi], axis=1)
        page[ptag] = fused
    workload = cache.workload
    if workload is not None:
        cur = workload.current
        if cur is not None and (cur is query or cur == query):
            idx = workload.index_row(pid, "vrects:" + op, op, fused)
            if start or stop != n:
                return [i for i in idx if start <= i < stop]
            return idx
    flags = (fused <= _qvec_single(op, query)).all(axis=1).tolist()
    return [i for i in range(start, stop) if flags[i]]


def match_rects(
    store,
    pid: int,
    values: Sequence[tuple[Rect, Any]],
    op: str,
    query: Rect,
) -> list:
    """The ``(rect, rid)`` pairs of a page matching ``op`` against ``query``.

    Convenience wrapper over :func:`select_rect_values` with an internal
    scalar fallback, for pages without extra per-hit bookkeeping.
    """
    idx = select_rect_values(store, pid, values, op, query)
    if idx is None:
        pred = _SCALAR_OPS[op]
        return [v for v in values if pred(v[0], query)]
    return [values[i] for i in idx]


#: Scalar oracles matching the fused kernels (stored box first, query second).
_SCALAR_OPS = {
    "isect": lambda r, q: r.intersects(q),
    "within": lambda r, q: q.contains_rect(r),
    "encl": lambda r, q: r.contains_rect(q),
}
