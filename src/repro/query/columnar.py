"""Columnar page caches and batched query workloads.

A :class:`ColumnarCache` lives on a :class:`~repro.storage.pagestore.PageStore`
(``store.columnar``) and lazily materialises, per page, the small NumPy
arrays the vectorized scan helpers need — record coordinates for data pages,
``(lo, hi)`` bounds for directory entries.  The store invalidates a page's
arrays on every :meth:`~repro.storage.pagestore.PageStore.write` and
:meth:`~repro.storage.pagestore.PageStore.free`, before any charging
decision, so mutation paths can never observe stale arrays.

A *workload* batches an entire query file: when the driver registers the
file's query boxes up front, the scan helpers evaluate each hot (page,
predicate) pair against **all** queries in one ``(Q, n)`` kernel call and
then answer every later query that touches the same page from the cached
per-query hit-index lists without touching NumPy again.  Queries
issued outside a workload (or whose box does not match the registered one)
fall back to single-query kernels, and stores without a cache run the
original scalar loops — behaviour, not just results, is unchanged.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Sequence

import numpy as np

from repro.geometry.rect import Rect

__all__ = [
    "ColumnarCache",
    "QueryWorkload",
    "promote_visits_for",
    "vector_enabled",
]

_FALSY = ("0", "off", "no", "false")


def vector_enabled() -> bool:
    """Whether new stores get a columnar cache (``REPRO_VECTOR``, default on)."""
    return os.environ.get("REPRO_VECTOR", "").lower() not in _FALSY


def promote_visits_for(batch_size: int) -> int:
    """The visit count at which a page's batch mask is built.

    Defaults to ``max(4, Q // 8)`` — the batch kernel costs roughly
    ``Q / 10`` single evaluations, so promotion only pays on pages a
    sizeable fraction of the batch revisits.  ``REPRO_VECTOR_PROMOTE``
    overrides the threshold outright (a positive integer; tuned runs
    carry the value in their ledger fingerprint so they never gate
    against untuned baselines).
    """
    raw = os.environ.get("REPRO_VECTOR_PROMOTE", "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_VECTOR_PROMOTE must be a positive integer, got {raw!r}"
            ) from None
        if value < 1:
            raise ValueError(
                f"REPRO_VECTOR_PROMOTE must be a positive integer, got {raw!r}"
            )
        return value
    return max(4, batch_size // 8)


#: Fused query-vector builders per op family (see repro.geometry.kernels):
#: each maps the batch ``(qlo, qhi)`` corner matrices to the ``(Q, 2d)``
#: matrix a fused page array is compared against with a single ``<=``.
_QVEC_BUILDERS = {
    "pts": lambda qlo, qhi: np.concatenate([-qlo, qhi], axis=1),
    "isect": lambda qlo, qhi: np.concatenate([qhi, -qlo], axis=1),
    "within": lambda qlo, qhi: np.concatenate([-qlo, qhi], axis=1),
    "encl": lambda qlo, qhi: np.concatenate([qlo, -qhi], axis=1),
}


class QueryWorkload:
    """A registered batch of query boxes, plus its per-page hit-index cache.

    ``rects[i]`` may be ``None`` when query ``i`` cannot produce a box (the
    transformation technique's center representation); its batch rows are
    NaN and compare false everywhere, and the scan helpers are never asked
    for them because the access method returns early.

    Batch evaluation pays the whole batch's kernel work up front, which only
    amortises on pages many queries revisit.  A page is therefore *promoted*
    only once its visit count under one tag reaches :attr:`promote_visits`;
    colder pages answer with a single-query fused row.  Promotion runs one
    ``(Q, n)`` kernel call and flattens the mask to CSR form — one
    ``nonzero`` plus one ``searchsorted`` for the whole batch, after which
    any query's ascending hit-index list is a two-element slice and a
    ``tolist``.  The per-query memo keeps revisits of a hot page within
    *one* query (as the z-ordered structures do when a query decomposes
    into several intervals) at a single dict lookup, no NumPy at all.
    """

    __slots__ = (
        "rects",
        "qlo",
        "qhi",
        "index",
        "current",
        "promote_visits",
        "_qvecs",
        "_qrange",
        "_rows",
        "_visits",
        "_hot",
        "_cur",
    )

    def __init__(
        self, rects: Sequence["Rect | None"], hot: "frozenset | None" = None
    ):
        self.rects = list(rects)
        self.qlo: "np.ndarray | None" = None
        self.qhi: "np.ndarray | None" = None
        dims = next((r.dims for r in self.rects if r is not None), 0)
        if self.rects and dims:
            qlo = np.full((len(self.rects), dims), np.nan)
            qhi = np.full((len(self.rects), dims), np.nan)
            for i, rect in enumerate(self.rects):
                if rect is not None:
                    qlo[i] = rect.lo
                    qhi[i] = rect.hi
            self.qlo = qlo
            self.qhi = qhi
        #: Index of the query currently being executed (set by the driver).
        self.index = -1
        self.current: "Rect | None" = None
        #: Visits of one (pid, tag) before the batch is evaluated (see
        #: :func:`promote_visits_for`; ``REPRO_VECTOR_PROMOTE`` overrides).
        self.promote_visits = promote_visits_for(len(self.rects))
        # op -> (Q, 2d) fused query matrix (built lazily per op family).
        self._qvecs: dict[str, np.ndarray] = {}
        #: ``arange(Q + 1)`` — the searchsorted probe turning a batch
        #: mask's nonzero pairs into per-query CSR row offsets.
        self._qrange = np.arange(len(self.rects) + 1)
        # (pid, tag) -> (starts, cols): the batch verdict in CSR form —
        # query i's ascending hit indices are cols[starts[i]:starts[i+1]].
        # ``starts`` is a plain list: offsets are probed twice per page
        # visit, and Python-int indexing beats NumPy scalar extraction.
        self._rows: dict[tuple[int, str], tuple] = {}
        # (pid, tag) -> visits answered without a batch evaluation.
        self._visits: dict[tuple[int, str], int] = {}
        #: Pids that ran hot in an earlier workload of this cache (see
        #: :meth:`ColumnarCache.end_workload`): promote on first visit
        #: instead of re-counting — an evaluation hint only, the verdicts
        #: are computed against *this* workload's queries either way.
        #: Pid-level on purpose: the per-op tags of one page are probed by
        #: the same traversals, so heat transfers across query files even
        #: when the operation (and therefore the row key) changes.
        self._hot: frozenset = hot if hot is not None else frozenset()
        # (pid, tag) -> hit row of the *current* query only, for structures
        # that revisit one page several times within a single query (the
        # z-ordered methods scan one leaf per z-interval).  Cleared on
        # every set_query.
        self._cur: dict[tuple[int, str], list] = {}

    def set_query(self, index: int) -> None:
        """Mark query ``index`` as the one currently executing."""
        self.index = index
        self.current = self.rects[index]
        self._cur.clear()

    def matches(self, rect: Rect) -> bool:
        """Whether ``rect`` is the registered box of the current query."""
        cur = self.current
        return cur is not None and (cur is rect or cur == rect)

    def qvecs(self, op: str) -> np.ndarray:
        """The ``(Q, 2d)`` fused query matrix for ``op``, built on demand."""
        qv = self._qvecs.get(op)
        if qv is None:
            qv = self._qvecs[op] = _QVEC_BUILDERS[op](self.qlo, self.qhi)
        return qv

    def index_row(self, pid: int, tag: str, op: str, fused: "np.ndarray") -> list:
        """Ascending hit indices of page ``pid`` for the current query.

        Answers from the promoted page's CSR verdict when the page is hot,
        from a single-query fused row otherwise (see class docstring).
        Callers must treat the returned list as read-only — within-query
        revisits hand out the cached list itself.
        """
        key = (pid, tag)
        row = self._cur.get(key)
        if row is not None:
            return row
        entry = self._rows.get(key)
        if entry is None:
            visits = self._visits.get(key, 0) + 1
            if visits < self.promote_visits and pid not in self._hot:
                self._visits[key] = visits
                mask = (fused <= self.qvecs(op)[self.index]).all(axis=1)
                row = self._cur[key] = mask.nonzero()[0].tolist()
                return row
            qvecs = self.qvecs(op)
            # Column-AND instead of a (Q, n, 2d) broadcast + reduction:
            # same exact comparisons, a fraction of the memory traffic.
            mask = fused[:, 0] <= qvecs[:, 0:1]
            for j in range(1, fused.shape[1]):
                mask &= fused[:, j] <= qvecs[:, j : j + 1]
            qidx, cols = mask.nonzero()
            entry = self._rows[key] = (
                np.searchsorted(qidx, self._qrange).tolist(),
                cols,
            )
        starts, cols = entry
        i = self.index
        s = starts[i]
        e = starts[i + 1]
        row = self._cur[key] = cols[s:e].tolist() if e > s else []
        return row

    def invalidate(self, pid: int) -> None:
        """Drop every cached hit row (and visit count) for page ``pid``."""
        for key in [k for k in self._rows if k[0] == pid]:
            del self._rows[key]
        for key in [k for k in self._visits if k[0] == pid]:
            del self._visits[key]
        for key in [k for k in self._cur if k[0] == pid]:
            del self._cur[key]


class ColumnarCache:
    """Per-store cache of columnar page arrays (and the active workload)."""

    __slots__ = ("_pages", "workload", "_hot_pids")

    def __init__(self) -> None:
        # pid -> {tag: arrays}; tags distinguish the different array views
        # one page can have (e.g. a BANG entry page caches both block and
        # MBR bounds under separate tags).
        self._pages: dict[int, dict[str, Any]] = {}
        self.workload: "QueryWorkload | None" = None
        # Pids that ran hot in earlier workloads of this cache; the next
        # workload promotes them on first visit (comparison drivers run
        # several query files over one build, and a page hot for one file
        # is almost always hot for the next).
        self._hot_pids: set = set()

    # -- arrays ----------------------------------------------------------

    def arrays(self, pid: int, tag: str, build: Callable[[], Any]) -> Any:
        """The cached arrays for ``(pid, tag)``, building them on a miss."""
        page = self._pages.get(pid)
        if page is None:
            page = self._pages[pid] = {}
        arrays = page.get(tag)
        if arrays is None:
            arrays = page[tag] = build()
        return arrays

    def invalidate(self, pid: int) -> None:
        """Drop page ``pid``'s arrays and any batch masks built from them."""
        self._pages.pop(pid, None)
        if self.workload is not None:
            self.workload.invalidate(pid)
        self._hot_pids.discard(pid)

    def clear(self) -> None:
        """Drop everything (arrays, hit rows and visit counts)."""
        self._pages.clear()
        self._hot_pids.clear()
        if self.workload is not None:
            self.workload._rows.clear()
            self.workload._visits.clear()
            self.workload._cur.clear()

    # -- workloads -------------------------------------------------------

    def begin_workload(self, rects: Sequence["Rect | None"]) -> QueryWorkload:
        """Register a query file's boxes for batched evaluation."""
        self.workload = QueryWorkload(rects, frozenset(self._hot_pids))
        return self.workload

    def end_workload(self) -> None:
        """Deregister the batch, remembering which pages ran hot.

        Pids of promoted keys — and of keys whose visit count reached
        half the promotion threshold — seed the next workload's
        first-visit promotion hint.  A hint never changes a verdict
        (each workload evaluates its own queries); it only moves the
        batch kernel earlier.
        """
        workload = self.workload
        if workload is not None:
            hot = self._hot_pids
            hot.update(pid for pid, _ in workload._rows)
            cut = max(2, workload.promote_visits // 2)
            hot.update(k[0] for k, v in workload._visits.items() if v >= cut)
        self.workload = None
