"""Batched level-at-a-time traversal (plan / replay).

PR 4 vectorized the work *inside* a visited page but left the descent
itself scalar: every directory page paid a Python helper call, side-cache
probes and — below the workload promotion threshold — its own two-dispatch
NumPy kernel.  At the paper's 512-byte pages those per-page costs dominate
the query path.  This module batches the descent:

**Plan.**  A query walks the structure level by level over *uncharged*
page views (:meth:`~repro.storage.pagestore.PageStore.peek`).  All cold
pages of one level are evaluated against the query in **one fused kernel
call** — their fused struct-of-arrays rows (canonical on the page, see
:mod:`repro.storage.soa`) are concatenated and compared against a single
query vector — producing each page's ascending verdict row; the verdict
rows define the next level's frontier as index arrays.  Pages already
answered by the batched workload cache skip even that.

**Replay.**  The structure then re-runs its original descent loop —
identical visit order, identical :meth:`PageStore.read` calls — consuming
the precomputed verdict rows instead of evaluating predicates per page.
Because the replay issues the same charged accesses in the same order as
the scalar path, the disk-access statistics, the search-path buffer state
and the observer/explain event stream are bit-identical by construction,
not merely by accounting.

Structures whose visited page set does not depend on page contents (the
grid family, the z-ordered leaf scans) skip the plan phase entirely: they
read their candidate pages in the original order first, then evaluate all
cold pages in one fused call and assemble results — same accesses, same
results, one kernel.

:class:`RowSource` is the shared primitive: it answers per-page verdict
rows from the workload's batch cache when the page is hot, and otherwise
defers the page into the current level's fused batch.  It shares the
workload's promotion counters and per-query memo with the per-page scan
helpers (:mod:`repro.query.scan`), so mixed call sites stay coherent.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.rect import Rect
from repro.storage import soa

__all__ = ["RowSource", "data_hit_rows", "box_view", "value_view", "qvec_for"]

_EMPTY_ROW: list = []

#: op -> (container view tag, builder) for containers of :class:`Rect`.
#: Intersection and enclosure share the ``[lo, -hi]`` fused encoding,
#: containment needs ``[-lo, hi]`` (see :mod:`repro.geometry.kernels`).
_BOX_VIEWS = {
    "isect": ("boxes:cover", soa.fused_cover_boxes),
    "encl": ("boxes:cover", soa.fused_cover_boxes),
    "within": ("boxes:anti", soa.fused_anti_boxes),
}

#: Same, for containers of ``(rect, payload)`` pairs.
_VALUE_VIEWS = {
    "isect": ("values:cover", soa.fused_cover_values),
    "encl": ("values:cover", soa.fused_cover_values),
    "within": ("values:anti", soa.fused_anti_values),
}


def box_view(op: str) -> tuple:
    """``(view tag, builder)`` for containers of Rect rows under ``op``.

    Callers hoist this lookup out of their per-page loop and hand both
    to :meth:`RowSource.row`, which materialises the view only when the
    page cannot be answered from a cache.
    """
    return _BOX_VIEWS[op]


def value_view(op: str) -> tuple:
    """``(view tag, builder)`` for containers of (rect, rid) rows."""
    return _VALUE_VIEWS[op]


def qvec_for(op: str, query: Rect) -> np.ndarray:
    """The fused ``(2d,)`` query vector of one box for ``op``.

    Sign flips only — exact in IEEE-754, so one fused comparison is
    bit-identical to the pairwise scalar predicate
    (see :mod:`repro.geometry.kernels`).
    """
    if op == "pts" or op == "within":
        vals = tuple(-c for c in query.lo) + query.hi
    elif op == "isect":
        vals = query.hi + tuple(-c for c in query.lo)
    else:  # "encl"
        vals = query.lo + tuple(-c for c in query.hi)
    return np.array(vals)


class RowSource:
    """Per-operation verdict rows with workload caching and level batching.

    One instance serves one public query call.  ``row()`` returns the
    ascending hit-index list of a ``(pid, rowkey)`` pair immediately when
    it is memoised or the workload holds the page's batch mask, and
    otherwise enqueues the page's fused rows into the current level's
    batch, returning ``None``; ``flush()`` evaluates every enqueued page
    in one kernel call per op family and memoises the rows.  After a
    flush, ``rows[(pid, rowkey)]`` holds every row requested this level.

    Verdicts are bit-identical to the scalar predicates: hot pages answer
    from the same ``(Q, n)`` masks the scan helpers build, cold pages ride
    a concatenated single-comparison kernel over the same fused arrays.
    """

    __slots__ = ("workload", "qidx", "rows", "query", "_pend", "_pend_keys", "_qvecs")

    def __init__(self, cache, query: Rect):
        workload = cache.workload if cache is not None else None
        if workload is not None:
            cur = workload.current
            if cur is None or not (cur is query or cur == query):
                workload = None
        self.workload = workload
        self.query = query
        #: Memoised rows of this operation; the workload's per-query memo
        #: when a batch is registered, so per-page scan helpers and the
        #: planner share within-query revisit answers.
        self.rows: dict = workload._cur if workload is not None else {}
        # op -> (keys, arrays): pages deferred into the level batch.
        self._pend: dict[str, tuple[list, list]] = {}
        # Keys already deferred — the z-ordered structures revisit one
        # page several times within a query; enqueue it once per flush.
        self._pend_keys: set = set()
        self._qvecs: dict[str, np.ndarray] = {}

    def row(self, pid: int, rowkey: str, op: str, lst, tag: str, build) -> "list | None":
        """The verdict row for ``(pid, rowkey)``, or ``None`` if deferred.

        ``lst`` is the page's struct-of-arrays container and ``(tag,
        build)`` name its fused view for the op's family (hoist the
        lookup from ``_BOX_VIEWS``/``_VALUE_VIEWS`` out of the loop) —
        the view is only materialised when this call actually needs the
        arrays, which cache-answered pages never do.  ``rowkey`` is the
        workload row key (tag + ":" + op for bound selects, ``"pts"``
        for record matches).
        """
        key = (pid, rowkey)
        rows = self.rows
        row = rows.get(key)
        if row is not None:
            return row
        if key in self._pend_keys:
            return None
        workload = self.workload
        if workload is not None:
            entry = workload._rows.get(key)
            if entry is None:
                visits = workload._visits.get(key, 0) + 1
                if visits < workload.promote_visits and pid not in workload._hot:
                    workload._visits[key] = visits
                else:
                    qvecs = workload.qvecs(op)
                    fused = lst.view(tag, build)
                    # Column-AND instead of a (Q, n, 2d) broadcast +
                    # reduction: same comparisons, less memory traffic.
                    mask = fused[:, 0] <= qvecs[:, 0:1]
                    for j in range(1, fused.shape[1]):
                        mask &= fused[:, j] <= qvecs[:, j : j + 1]
                    qidx, cols = mask.nonzero()
                    entry = workload._rows[key] = (
                        np.searchsorted(qidx, workload._qrange).tolist(),
                        cols,
                    )
            if entry is not None:
                starts, cols = entry
                i = workload.index
                s = starts[i]
                e = starts[i + 1]
                row = rows[key] = cols[s:e].tolist() if e > s else _EMPTY_ROW
                return row
        pend = self._pend.get(op)
        if pend is None:
            pend = self._pend[op] = ([], [])
        fused = lst.view(tag, build)
        pend[0].append((key, fused.shape[0]))
        pend[1].append(fused)
        self._pend_keys.add(key)
        return None

    def flush(self) -> dict:
        """Evaluate every deferred page — one fused kernel call per op.

        Fills and returns the memo (:attr:`rows`); after this call every
        key passed to :meth:`row` since the last flush resolves.
        """
        rows = self.rows
        pend = self._pend
        if pend:
            workload = self.workload
            for op, (keys, arrays) in pend.items():
                fused = arrays[0] if len(arrays) == 1 else np.concatenate(arrays)
                qvec = self._qvecs.get(op)
                if qvec is None:
                    if workload is not None:
                        # Row of the workload's fused query matrix — same
                        # floats as qvec_for, already materialised.
                        qvec = workload.qvecs(op)[workload.index]
                    else:
                        qvec = qvec_for(op, self.query)
                    self._qvecs[op] = qvec
                flags = (fused <= qvec).all(axis=1).tolist()
                pos = 0
                for key, n in keys:
                    rows[key] = [i for i in range(n) if flags[pos + i]]
                    pos += n
            pend.clear()
            self._pend_keys.clear()
        return rows


def data_hit_rows(
    store, query: Rect, pages: Sequence[tuple[int, Sequence]]
) -> "dict[int, list[int]] | None":
    """Ascending record-hit rows for a set of data pages, batch-evaluated.

    ``pages`` is ``[(pid, records), ...]`` with ``records`` a
    struct-of-arrays container of ``(point, rid)`` rows
    (:class:`~repro.storage.soa.SoAList`).  All pages the workload cache
    cannot answer are evaluated in **one** fused kernel call.  Returns
    ``None`` when the store has no columnar cache — callers then run their
    scalar loops.  Reading the pages (and the charging order) is entirely
    the caller's business, so access statistics cannot change.
    """
    cache = store.columnar
    if cache is None:
        return None
    src = RowSource(cache, query)
    row = src.row
    fused_points = soa.fused_points
    for pid, records in pages:
        if records:
            row(pid, "pts", "pts", records, "pts", fused_points)
        else:
            src.rows[(pid, "pts")] = _EMPTY_ROW
    rows = src.flush()
    return {pid: rows[(pid, "pts")] for pid, _ in pages}
