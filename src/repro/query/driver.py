"""The batched query driver: run one query file in a single pass.

The driver is the third tier of the vectorized execution story
(:mod:`repro.query.scan`): it registers a whole query file as a batched
workload on the method's columnar cache, marks the current query index
before each call, and runs every query under the usual per-operation
disk-access measurement.  A page visited by many queries of the file is
then evaluated against *all* of them in one ``(Q, n)`` kernel call, and
each later query reuses its cached mask row.

Registration is an evaluation hint only: the queries still execute one
at a time through the method's public API, so the pages touched and the
per-query disk-access statistics are bit-identical to the scalar path.
The driver is duck-typed — any object with ``store``,
``register_query_workload`` and ``end_query_workload`` works — so it can
be used without importing the core experiment machinery.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Sequence

__all__ = ["run_query_file"]


def _measure(store, operation: Callable[[], Any]) -> tuple[int, Any]:
    """Run one operation and return ``(disk accesses, result)``."""
    before = store.stats.total
    result = operation()
    return store.stats.total - before, result


def run_query_file(
    method,
    kind: str,
    queries: Sequence,
    operation: Callable[[Any], Any],
    explain=None,
) -> list[tuple[int, Any]]:
    """Execute every query of one file, returning ``[(cost, result), ...]``.

    ``kind`` is the query-type tag understood by the method's
    ``_workload_rects`` (``range``, ``pm``, ``point``, ``intersection``,
    ``containment``, ``enclosure``); ``operation(query)`` must run exactly
    one public query of ``method``.  Without a columnar cache
    (``REPRO_VECTOR=0``) this degenerates to the plain per-query loop.

    ``explain`` is an optional
    :class:`~repro.obs.explain.ExplainRecorder`; when given, every query
    of the file is traced (visited pages, candidates/hits, prunes).
    Tracing chains the store's observer, so measured costs and results
    are identical with or without it.
    """
    method.register_query_workload(kind, queries)
    cache = method.store.columnar
    workload = cache.workload if cache is not None else None
    if explain is not None:
        explain.start_file(method, kind)
    # The per-query timing below exists only when telemetry is active:
    # the disabled path keeps the loop free of perf_counter calls, and
    # the timing never feeds back into the charged cost accounting.
    from repro.obs.telemetry import active_telemetry

    telem = active_telemetry()
    out: list[tuple[int, Any]] = []
    stats = method.store.stats
    try:
        for index, query in enumerate(queries):
            if workload is not None:
                workload.set_query(index)
            # _measure, inlined: the per-query accounting runs tens of
            # thousands of times per file and is common to both modes.
            before = (
                stats.data_reads
                + stats.data_writes
                + stats.dir_reads
                + stats.dir_writes
            )
            if telem is not None:
                started = time.perf_counter()
            result = operation(query)
            cost = (
                stats.data_reads
                + stats.data_writes
                + stats.dir_reads
                + stats.dir_writes
                - before
            )
            if telem is not None:
                seconds = time.perf_counter() - started
                telem.observe("query.latency_seconds", seconds)
                telem.maybe_slow_op(
                    "query",
                    seconds,
                    detail={"kind": kind, "index": index, "cost": cost},
                )
            out.append((cost, result))
            if explain is not None:
                explain.finish_query(index, query, cost, result)
    finally:
        method.end_query_workload()
        if explain is not None:
            explain.end_file()
    return out
