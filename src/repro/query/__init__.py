"""Vectorized query execution over the simulated page store.

The package replaces the per-record Python loops inside visited pages with
NumPy kernels (:mod:`repro.geometry.kernels`) driven off small columnar
caches of page contents (:mod:`repro.query.columnar`).  The invariant that
makes this safe is spelled out in DESIGN.md: vectorization happens strictly
*within* pages the scalar path already visits, so the set of pages touched —
and every disk-access statistic the paper reports — is bit-identical with
vectorization on or off (``REPRO_VECTOR=0`` is the kill switch).

Modules
-------
``columnar``   per-store cache of page coordinate arrays + batch workloads
``scan``       in-page scan helpers shared by every access method
``driver``     batched query driver running a whole query file in one pass
``bench``      scalar-vs-vector A/B harness (identity + wall-clock)
"""

from repro.query.columnar import ColumnarCache, vector_enabled

__all__ = ["ColumnarCache", "vector_enabled"]
