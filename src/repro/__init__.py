"""Reproduction of Kriegel, Schiwietz, Schneider & Seeger (SSD '89).

``repro`` re-implements, in pure Python over a simulated 512-byte page
store, every access method compared in *"Performance Comparison of Point
and Spatial Access Methods"* (Symposium on the Design and Implementation
of Large Spatial Databases, Santa Barbara, 1989):

* Part I — point access methods: the 2-level grid file, the BANG file
  (fixed and variable-length directory entries), the hB-tree and the
  BUDDY hash tree (plain and packed).
* Part II — spatial access methods for rectangles: the R-tree and
  PAM-based schemes built with the transformation, clipping and
  overlapping-regions techniques.

The package also ships the paper's workload generators (seven point
distributions, five rectangle distributions, all query files) and an
experiment driver that regenerates every table and figure of the paper's
evaluation section.  See ``DESIGN.md`` for the system inventory and
``EXPERIMENTS.md`` for paper-versus-measured results.
"""

from repro.core.interfaces import PointAccessMethod, SpatialAccessMethod
from repro.core.stats import AccessStats, BuildMetrics
from repro.geometry.rect import Rect
from repro.obs import MetricsRegistry, RunReport, Tracer
from repro.pam.bang import BangFile
from repro.pam.buddytree import BuddyTree
from repro.pam.gridfile import GridFile
from repro.pam.hbtree import HBTree
from repro.pam.kdbtree import KdBTree
from repro.pam.mlgf import MultilevelGridFile
from repro.pam.plop import PlopHashing, QuantileHashing
from repro.pam.twingrid import TwinGridFile
from repro.pam.twolevelgrid import TwoLevelGridFile
from repro.pam.zbtree import ZOrderBTree
from repro.sam.clipping import ClippingSAM
from repro.sam.overlapping import OverlappingPlop
from repro.sam.rplustree import RPlusTree
from repro.sam.rtree import RTree
from repro.sam.transformation import TransformationSAM
from repro.storage.pagestore import PageStore

__all__ = [
    "AccessStats",
    "BangFile",
    "BuddyTree",
    "BuildMetrics",
    "ClippingSAM",
    "GridFile",
    "HBTree",
    "KdBTree",
    "MetricsRegistry",
    "MultilevelGridFile",
    "OverlappingPlop",
    "PageStore",
    "PlopHashing",
    "PointAccessMethod",
    "QuantileHashing",
    "RPlusTree",
    "RTree",
    "Rect",
    "RunReport",
    "SpatialAccessMethod",
    "Tracer",
    "TransformationSAM",
    "TwinGridFile",
    "TwoLevelGridFile",
    "ZOrderBTree",
]

__version__ = "1.0.0"
