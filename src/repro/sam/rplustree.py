"""The R+-tree [SFR 87]: clipping applied to the R-tree.

The paper cites Sellis, Roussopoulos & Faloutsos to explain why R-tree
"retrieval performance heavily depends on the amount of overlap": the
R+-tree removes that overlap by force.  Inner regions are *disjoint*
and partition their parent region completely; a data rectangle crossing
a region boundary is stored in **every** leaf it intersects (redundant,
like any clipping scheme), and a region split forces the children
crossing the split plane to split as well, exactly as in the k-d-B
tree.

Point queries therefore follow a single path — the R+-tree's selling
point — while insertions pay for redundancy and splits can cascade.
Leaves whose rectangles cannot be separated by any plane keep a
tolerated overflow (the structure's known weakness).
"""

from __future__ import annotations

from repro.core.interfaces import SpatialAccessMethod
from repro.geometry.rect import Rect
from repro.storage import layout
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore
from repro.query import traverse
from repro.storage.soa import soa_field

__all__ = ["RPlusTree"]


class _Leaf:
    """A leaf page: data rectangles of one disjoint region (clipped in)."""

    __slots__ = ("_soa_rects", "rids")

    rects = soa_field()

    def __init__(self, rects=None, rids=None):
        self.rects: list[Rect] = rects or []
        self.rids: list[object] = rids or []


class _Inner:
    """An inner page: child regions partitioning this page's region."""

    __slots__ = ("_soa_regions", "pids", "leaf_children")

    regions = soa_field()

    def __init__(self, regions=None, pids=None, leaf_children=True):
        self.regions: list[Rect] = regions or []
        self.pids: list[int] = pids or []
        self.leaf_children = leaf_children


class RPlusTree(SpatialAccessMethod):
    """An R+-tree storing axis-parallel rectangles with clipping."""

    def __init__(self, store: PageStore, dims: int = 2):
        super().__init__(store, dims, layout.rect_record_size(dims))
        self._capacity = layout.data_page_capacity(self.record_size, store.page_size)
        entry_size = 2 * dims * layout.COORD_SIZE + layout.POINTER_SIZE
        self._fanout = layout.directory_page_payload(store.page_size) // entry_size
        self._root_pid = store.allocate(PageKind.DATA, _Leaf())
        self._root_is_leaf = True
        store.pin(self._root_pid)
        store.write(self._root_pid)
        self._height = 0

    # -- plumbing -----------------------------------------------------------

    @property
    def record_capacity(self) -> int:
        return self._capacity

    @property
    def directory_height(self) -> int:
        return self._height

    @property
    def stored_entries(self) -> int:
        """Total leaf entries; ``stored_entries / len(self)`` is the
        redundancy factor paid for disjoint regions."""
        total = 0
        for pid in self.store.page_ids():
            obj = self.store._objects[pid]
            if isinstance(obj, _Leaf):
                total += len(obj.rects)
        return total

    def iter_records(self):
        """Uncharged walk yielding one ``(rect, rid)`` per distinct rid
        (clipping stores a rid in every leaf its rectangle meets)."""
        seen: set[object] = set()
        stack = [(self._root_pid, self._root_is_leaf)]
        while stack:
            pid, is_leaf = stack.pop()
            if is_leaf:
                leaf: _Leaf = self.store.peek(pid)
                for rect, rid in zip(leaf.rects, leaf.rids):
                    if rid not in seen:
                        seen.add(rid)
                        yield rect, rid
            else:
                node: _Inner = self.store.peek(pid)
                stack.extend((child, node.leaf_children) for child in node.pids)

    def _snapshot_pages(self):
        """Uncharged :class:`PageView` walk (see :mod:`repro.obs.structure`)."""
        from repro.obs.structure import PageView

        queue: list[tuple[int, bool, Rect, int]] = [
            (self._root_pid, self._root_is_leaf, Rect.unit(self.dims), 0)
        ]
        i = 0
        while i < len(queue):
            pid, is_leaf, region, depth = queue[i]
            i += 1
            if is_leaf:
                leaf: _Leaf = self.store.peek(pid)
                yield PageView(
                    pid=pid,
                    kind="data",
                    depth=depth,
                    regions=(region,),
                    records=len(leaf.rects),
                    capacity=self._capacity,
                    content=Rect.bounding(leaf.rects) if leaf.rects else None,
                )
                continue
            node: _Inner = self.store.peek(pid)
            yield PageView(
                pid=pid,
                kind="directory",
                depth=depth,
                regions=(region,),
                records=len(node.pids),
                capacity=self._fanout,
                children=tuple(node.pids),
                entry_regions=tuple(node.regions),
            )
            for child_region, child in zip(node.regions, node.pids):
                queue.append((child, node.leaf_children, child_region, depth + 1))

    # -- insertion -----------------------------------------------------------------

    def _insert(self, rect: Rect, rid: object) -> None:
        if self._root_is_leaf:
            leaf: _Leaf = self.store.read(self._root_pid)
            leaf.rects.append(rect)
            leaf.rids.append(rid)
            if len(leaf.rects) > self._capacity:
                self._split_root_leaf(leaf)
            else:
                self.store.write(self._root_pid)
            return
        split = self._insert_into(self._root_pid, Rect.unit(self.dims), rect, rid)
        if split is not None:
            self._grow_root(*split)

    def _insert_into(self, pid: int, region: Rect, rect: Rect, rid: object):
        """Insert into every child whose region meets ``rect``; handle splits."""
        node: _Inner = self.store.read(pid)
        slot = 0
        while slot < len(node.pids):
            child_region = node.regions[slot]
            if not child_region.intersects(rect):
                slot += 1
                continue
            child_pid = node.pids[slot]
            if node.leaf_children:
                leaf: _Leaf = self.store.read(child_pid)
                leaf.rects.append(rect)
                leaf.rids.append(rid)
                self.store.write(child_pid)
                if len(leaf.rects) > self._capacity and self._split_leaf_under(
                    node, slot
                ):
                    slot += 1  # the new sibling already received the rect
            else:
                child_split = self._insert_into(child_pid, child_region, rect, rid)
                if child_split is not None:
                    left, right = child_split
                    node.regions[slot] = left[0]
                    node.pids[slot] = left[1]
                    node.regions.insert(slot + 1, right[0])
                    node.pids.insert(slot + 1, right[1])
                    slot += 1  # the split subtree already holds the rect
            slot += 1
        self.store.write(pid)
        if len(node.pids) <= self._fanout:
            return None
        return self._split_inner(pid, node, region)

    def _split_root_leaf(self, leaf: _Leaf) -> None:
        plane = self._choose_leaf_plane(leaf, Rect.unit(self.dims))
        if plane is None:
            self.store.write(self._root_pid)
            return
        axis, value = plane
        left_rect, right_rect = Rect.unit(self.dims).split_at(axis, value)
        left, right = self._distribute(leaf, axis, value)
        self.store._objects[self._root_pid] = left
        right_pid = self.store.allocate(PageKind.DATA, right)
        self.store.unpin(self._root_pid)
        self.store.write(self._root_pid)
        self.store.write(right_pid)
        self._root_is_leaf = False
        self._grow_root((left_rect, self._root_pid), (right_rect, right_pid), True)

    def _grow_root(self, left, right, leaf_children=False) -> None:
        root = _Inner(
            regions=[left[0], right[0]],
            pids=[left[1], right[1]],
            leaf_children=leaf_children,
        )
        self.store.unpin(self._root_pid)
        self._root_pid = self.store.allocate(PageKind.DIRECTORY, root)
        self.store.pin(self._root_pid)
        self.store.write(self._root_pid)
        self._height += 1

    def _distribute(self, leaf: _Leaf, axis: int, value: float):
        """Clip a leaf's entries at the plane; crossers go to both sides."""
        left, right = _Leaf(), _Leaf()
        for rect, rid in zip(leaf.rects, leaf.rids):
            if rect.hi[axis] <= value and rect.lo[axis] < value:
                left.rects.append(rect)
                left.rids.append(rid)
            elif rect.lo[axis] >= value or (
                rect.hi[axis] == value == rect.lo[axis]
            ):
                right.rects.append(rect)
                right.rids.append(rid)
            else:
                left.rects.append(rect)
                left.rids.append(rid)
                right.rects.append(rect)
                right.rids.append(rid)
        return left, right

    def _choose_leaf_plane(self, leaf: _Leaf, region: Rect):
        """Plane minimising clipped entries, ties by balance."""
        best = None
        best_key = None
        for axis in range(self.dims):
            candidates = set()
            for rect in leaf.rects:
                for v in (rect.lo[axis], rect.hi[axis]):
                    if region.lo[axis] < v < region.hi[axis]:
                        candidates.add(v)
            mid = (region.lo[axis] + region.hi[axis]) / 2.0
            candidates.add(mid)
            for value in candidates:
                crossing = sum(
                    1 for r in leaf.rects if r.lo[axis] < value < r.hi[axis]
                )
                left = sum(1 for r in leaf.rects if r.hi[axis] <= value)
                right = len(leaf.rects) - left - crossing
                if left + crossing > self._capacity or right + crossing > self._capacity:
                    continue  # the split would not relieve the overflow
                key = (crossing, abs(left - right))
                if best_key is None or key < best_key:
                    best_key = key
                    best = (axis, value)
        return best

    def _split_leaf_under(self, node: _Inner, slot: int) -> bool:
        pid = node.pids[slot]
        region = node.regions[slot]
        leaf: _Leaf = self.store._objects[pid]
        plane = self._choose_leaf_plane(leaf, region)
        if plane is None:
            return False  # unsplittable: tolerated overflow, the R+-tree caveat
        axis, value = plane
        left_region, right_region = region.split_at(axis, value)
        left, right = self._distribute(leaf, axis, value)
        self.store._objects[pid] = left
        right_pid = self.store.allocate(PageKind.DATA, right)
        node.regions[slot] = left_region
        node.regions.insert(slot + 1, right_region)
        node.pids.insert(slot + 1, right_pid)
        self.store.write(pid)
        self.store.write(right_pid)
        return True

    def _split_inner(self, pid: int, node: _Inner, region: Rect):
        """Split an inner page, force-splitting crossing children."""
        axis, value = self._choose_inner_plane(node, region)
        left_region, right_region = region.split_at(axis, value)
        left = _Inner(leaf_children=node.leaf_children)
        right = _Inner(leaf_children=node.leaf_children)
        for child_region, child_pid in zip(node.regions, node.pids):
            if child_region.hi[axis] <= value:
                left.regions.append(child_region)
                left.pids.append(child_pid)
            elif child_region.lo[axis] >= value:
                right.regions.append(child_region)
                right.pids.append(child_pid)
            else:
                l_region, r_region = child_region.split_at(axis, value)
                l_pid, r_pid = self._force_split(
                    child_pid, node.leaf_children, axis, value
                )
                left.regions.append(l_region)
                left.pids.append(l_pid)
                right.regions.append(r_region)
                right.pids.append(r_pid)
        self.store._objects[pid] = left
        right_pid = self.store.allocate(PageKind.DIRECTORY, right)
        self.store.write(pid)
        self.store.write(right_pid)
        return (left_region, pid), (right_region, right_pid)

    def _choose_inner_plane(self, node: _Inner, region: Rect) -> tuple[int, float]:
        best = None
        best_key = None
        for axis in range(self.dims):
            candidates = set()
            for rect in node.regions:
                for v in (rect.lo[axis], rect.hi[axis]):
                    if region.lo[axis] < v < region.hi[axis]:
                        candidates.add(v)
            for value in candidates:
                forced = sum(
                    1 for r in node.regions if r.lo[axis] < value < r.hi[axis]
                )
                left = sum(1 for r in node.regions if r.hi[axis] <= value)
                right = sum(1 for r in node.regions if r.lo[axis] >= value)
                key = (forced, abs(left - right))
                if best_key is None or key < best_key:
                    best_key = key
                    best = (axis, value)
        if best is None:
            raise RuntimeError("inner page without separable children overflowed")
        return best

    def _force_split(self, pid: int, is_leaf: bool, axis: int, value: float):
        if is_leaf:
            leaf: _Leaf = self.store.read(pid)
            left, right = self._distribute(leaf, axis, value)
            self.store._objects[pid] = left
            right_pid = self.store.allocate(PageKind.DATA, right)
            self.store.write(pid)
            self.store.write(right_pid)
            return pid, right_pid
        node: _Inner = self.store.read(pid)
        left = _Inner(leaf_children=node.leaf_children)
        right = _Inner(leaf_children=node.leaf_children)
        for child_region, child_pid in zip(node.regions, node.pids):
            if child_region.hi[axis] <= value:
                left.regions.append(child_region)
                left.pids.append(child_pid)
            elif child_region.lo[axis] >= value:
                right.regions.append(child_region)
                right.pids.append(child_pid)
            else:
                l_region, r_region = child_region.split_at(axis, value)
                l_pid, r_pid = self._force_split(
                    child_pid, node.leaf_children, axis, value
                )
                left.regions.append(l_region)
                left.pids.append(l_pid)
                right.regions.append(r_region)
                right.pids.append(r_pid)
        self.store._objects[pid] = left
        right_pid = self.store.allocate(PageKind.DIRECTORY, right)
        self.store.write(pid)
        self.store.write(right_pid)
        return pid, right_pid

    # -- queries ------------------------------------------------------------------------

    #: Scalar fallbacks for the op tags of scan.select_boxes.
    _SCALAR_PRED = {
        "isect": lambda r, q: r.intersects(q),
        "within": lambda r, q: q.contains_rect(r),
        "encl": lambda r, q: r.contains_rect(q),
    }

    def _collect(self, region_op: str, entry_op: str, query: Rect) -> list[object]:
        store = self.store
        if store.columnar is None:
            return self._collect_scalar(region_op, entry_op, query)
        # Plan: level-at-a-time over uncharged views; one fused kernel
        # call per level for all cold pages (see repro.query.traverse).
        objects = store._objects
        src = traverse.RowSource(store.columnar, query)
        row_of = src.row
        entry_tag, entry_build = traverse.box_view(entry_op)
        region_tag, region_build = traverse.box_view(region_op)
        entry_key, region_key = "entries:" + entry_op, "regions:" + region_op
        verdicts: dict[int, list] = {}
        level = [(self._root_pid, self._root_is_leaf)]
        while level:
            nxt: list = []
            deferred: list = []
            for pid, is_leaf in level:
                if is_leaf:
                    leaf = objects[pid]
                    if not leaf.rects:
                        verdicts[pid] = traverse._EMPTY_ROW
                        continue
                    row = row_of(
                        pid, entry_key, entry_op, leaf.rects, entry_tag, entry_build
                    )
                    if row is None:
                        deferred.append((pid, True))
                    else:
                        verdicts[pid] = row
                    continue
                node = objects[pid]
                if not node.regions:
                    verdicts[pid] = traverse._EMPTY_ROW
                    continue
                row = row_of(
                    pid, region_key, region_op, node.regions, region_tag, region_build
                )
                if row is None:
                    deferred.append((pid, False))
                else:
                    verdicts[pid] = row
                    pids = node.pids
                    nxt.extend([(pids[i], node.leaf_children) for i in row])
            if deferred:
                rows = src.flush()
                for pid, is_leaf in deferred:
                    row = verdicts[pid] = rows[(pid, entry_key if is_leaf else region_key)]
                    if not is_leaf:
                        node = objects[pid]
                        pids = node.pids
                        nxt.extend([(pids[i], node.leaf_children) for i in row])
            level = nxt
        # Replay: the original descent order with charged reads; clipped
        # entries recur under several leaves, so first-seen dedup keeps
        # the scalar result order.
        result: list[object] = []
        seen: set[object] = set()
        read = store.read
        stack = [(self._root_pid, self._root_is_leaf)]
        while stack:
            pid, is_leaf = stack.pop()
            if is_leaf:
                rids = read(pid).rids
                for i in verdicts[pid]:
                    rid = rids[i]
                    if rid not in seen:
                        seen.add(rid)
                        result.append(rid)
            else:
                node = read(pid)
                pids = node.pids
                leaf = node.leaf_children
                stack.extend((pids[i], leaf) for i in verdicts[pid])
        return result

    def _collect_scalar(
        self, region_op: str, entry_op: str, query: Rect
    ) -> list[object]:
        """The original scalar descent (the ``REPRO_VECTOR=0`` kill switch)."""
        result: list[object] = []
        seen: set[object] = set()
        stack = [(self._root_pid, self._root_is_leaf)]
        while stack:
            pid, is_leaf = stack.pop()
            if is_leaf:
                leaf: _Leaf = self.store.read(pid)
                pred = self._SCALAR_PRED[entry_op]
                for rect, rid in zip(leaf.rects, leaf.rids):
                    if rid not in seen and pred(rect, query):
                        seen.add(rid)
                        result.append(rid)
                continue
            node: _Inner = self.store.read(pid)
            pred = self._SCALAR_PRED[region_op]
            for region, child in zip(node.regions, node.pids):
                if pred(region, query):
                    stack.append((child, node.leaf_children))
        return result

    def _point_query(self, point: tuple[float, ...]) -> list[object]:
        # contains_point(p) == contains_rect(degenerate box at p), exactly.
        return self._collect("encl", "encl", Rect.from_point(point))

    def _intersection(self, query: Rect) -> list[object]:
        return self._collect("isect", "isect", query)

    def _containment(self, query: Rect) -> list[object]:
        return self._collect("isect", "within", query)

    def _enclosure(self, query: Rect) -> list[object]:
        return self._collect("isect", "encl", query)
