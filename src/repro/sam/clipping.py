"""The clipping technique: redundant z-region decomposition.

Each rectangle is decomposed into at most ``redundancy`` z-regions
(binary-partition blocks) that jointly cover it; every region is stored
as one entry of a B+-tree keyed by ``(z-interval start, depth)``.  An
object therefore appears up to ``redundancy`` times in the file — the
price of clipping — but queries touch tighter key ranges the finer the
decomposition is.  This storage/retrieval trade-off is precisely the
subject of Orenstein's *"Redundancy in Spatial Databases"* strategy
paper in the same proceedings volume, and the redundancy ablation bench
sweeps it.

Queries translate to leaf-range scans for the query's own z-regions
plus exact probes for their ancestor blocks (a stored coarse region
covering the query area starts *before* the scanned interval and would
otherwise be missed).
"""

from __future__ import annotations

from repro.core.interfaces import SpatialAccessMethod
from repro.geometry.blocks import Bits
from repro.geometry.rect import Rect
from repro.geometry.zorder import decompose_rect, z_interval
from repro.pam.zbtree import _BPlusTree, snapshot_bplus_pages
from repro.storage import layout
from repro.storage.pagestore import PageStore
from repro.query import traverse

__all__ = ["ClippingSAM"]

#: Bits per axis of the Morton keys.
_Z_BITS = 16

#: Maximum depth of decomposition blocks.
_MAX_DEPTH = 16


class ClippingSAM(SpatialAccessMethod):
    """Rectangles clipped into z-regions stored in a B+-tree.

    Parameters
    ----------
    redundancy:
        Maximum number of z-regions one rectangle decomposes into.
        ``1`` stores each object once under its minimal enclosing block
        (no redundancy, coarse keys); larger values trade storage for
        query precision.
    """

    def __init__(self, store: PageStore, dims: int = 2, redundancy: int = 4):
        super().__init__(store, dims, layout.rect_record_size(dims))
        if redundancy < 1:
            raise ValueError("redundancy must be at least 1")
        self.redundancy = redundancy
        # Leaf entry: z-start (4) + depth (2) + rectangle + rid.
        record_size = 6 + self.record_size
        inner_entry = 6 + layout.POINTER_SIZE
        self._tree = _BPlusTree(
            store,
            leaf_capacity=layout.data_page_capacity(record_size, store.page_size),
            inner_capacity=layout.directory_page_payload(store.page_size)
            // inner_entry,
        )
        self._region_entries = 0

    # -- plumbing ---------------------------------------------------------

    @property
    def record_capacity(self) -> int:
        return self._tree.leaf_capacity

    @property
    def directory_height(self) -> int:
        return self._tree.height

    @property
    def stored_regions(self) -> int:
        """Total region entries; ``stored_regions / len(self)`` is the
        achieved redundancy factor."""
        return self._region_entries

    def iter_records(self):
        """Uncharged walk yielding one ``(rect, rid)`` per distinct rid
        (each rid is stored under up to ``redundancy`` z-region keys)."""
        seen: set[object] = set()
        for _, (rect, rid) in self._tree.iter_items():
            if rid not in seen:
                seen.add(rid)
                yield rect, rid

    def _snapshot_pages(self):
        """Uncharged :class:`PageView` walk (see :mod:`repro.obs.structure`).

        Leaf entry counts include every redundant z-region copy, so the
        snapshot's ``duplication_factor`` reports the achieved clipping
        redundancy directly.
        """

        def content_of(leaf):
            if not leaf.values:
                return None
            return Rect.bounding([rect for rect, _ in leaf.values])

        yield from snapshot_bplus_pages(self._tree, content_of)

    def metrics(self):
        """Slot utilisation counts region entries (objects are redundant)."""
        from dataclasses import replace

        base = super().metrics()
        slots = base.data_pages * self.record_capacity
        stor = 100.0 * self._region_entries / slots if slots else 0.0
        return replace(base, storage_utilization=stor)

    # -- operations -------------------------------------------------------------

    def _key(self, bits: Bits) -> tuple[int, int]:
        lo, _ = z_interval(bits, self.dims, _Z_BITS)
        return (lo, len(bits))

    def _insert(self, rect: Rect, rid: object) -> None:
        regions = decompose_rect(rect, self.dims, self.redundancy, _MAX_DEPTH)
        for bits in regions:
            self._tree.insert(self._key(bits), (rect, rid))
            self._region_entries += 1

    #: Scalar fallbacks for the op tags of scan.select_rect_values.
    _SCALAR_PRED = {
        "isect": lambda r, q: r.intersects(q),
        "within": lambda r, q: q.contains_rect(r),
        "encl": lambda r, q: r.contains_rect(q),
    }

    def _query(self, query: Rect, op: str) -> list[object]:
        """Scan the query's z-regions and probe their ancestors."""
        query_regions = decompose_rect(query, self.dims, 8, _MAX_DEPTH)
        seen: set[int] = set()
        result: list[object] = []
        predicate = self._SCALAR_PRED[op]

        def offer(rect: Rect, rid: object) -> None:
            if rid not in seen and predicate(rect, query):
                seen.add(rid)
                result.append(rid)

        store = self.store
        vector = store.columnar is not None
        src = traverse.RowSource(store.columnar, query) if vector else None
        rowkey = "vrects:" + op
        vtag, vbuild = traverse.value_view(op)
        # With a columnar cache the pass below only *charges* the reads
        # (in the original interleaved scan/probe order) and records an
        # action log; evaluation of all cold pages happens in one fused
        # kernel call afterwards, and the log replays the first-seen
        # dedup in the scalar order.
        actions: list = []
        probed: set[Bits] = set()
        for bits in query_regions:
            lo, hi = z_interval(bits, self.dims, _Z_BITS)
            for pid, leaf, start, stop in self._tree.scan_pages((lo, 0), (hi, 0)):
                if not vector:
                    for rect, rid in leaf.values[start:stop]:
                        offer(rect, rid)
                    continue
                values = leaf.values
                if not values:
                    continue
                src.row(pid, rowkey, op, values, vtag, vbuild)
                actions.append((pid, values, start, stop))
            # Ancestor blocks start before `lo`; probe each exactly once.
            for depth in range(len(bits)):
                ancestor = bits[:depth]
                if ancestor in probed:
                    continue
                probed.add(ancestor)
                items = self._tree.lookup(self._key(ancestor))
                if not vector:
                    for rect, rid in items:
                        offer(rect, rid)
                elif items:
                    actions.append((None, items, 0, 0))
        if not vector:
            return result
        rows = src.flush()
        for pid, values, start, stop in actions:
            if pid is None:
                # Ancestor probe: few entries, scalar predicate as before.
                for rect, rid in values:
                    offer(rect, rid)
                continue
            row = rows[(pid, rowkey)]
            if start or stop != len(values):
                row = [i for i in row if start <= i < stop]
            # The kernel already applied the predicate; only the
            # first-seen dedup remains.
            for i in row:
                rid = values[i][1]
                if rid not in seen:
                    seen.add(rid)
                    result.append(rid)
        return result

    def _point_query(self, point: tuple[float, ...]) -> list[object]:
        # contains_point(p) == contains_rect(degenerate box at p), exactly.
        return self._query(Rect.from_point(point), "encl")

    def _intersection(self, query: Rect) -> list[object]:
        return self._query(query, "isect")

    def _containment(self, query: Rect) -> list[object]:
        return self._query(query, "within")

    def _enclosure(self, query: Rect) -> list[object]:
        return self._query(query, "encl")
