"""The R-tree [Gut 84], the SAM comparison's measuring stick.

A balanced tree of minimal bounding rectangles with overlapping
regions.  Three split policies are available:

* ``"guttman"`` — the original quadratic split;
* ``"greene"`` — Greene's split [Gre 89]: pick the most separated seed
  pair (normalised), sort along that axis, cut in half;
* ``"margin"`` — the authors' own improvement mentioned in §8: choose
  the axis/position minimising the sum of the halves' margins, subject
  to the minimum fill.

Following §7 of the paper, the default minimum fill is 30 % of a node
(the authors found it beats Guttman's 50 % for retrieval), and the
measuring-stick configuration is Guttman's split with that fill.
"""

from __future__ import annotations

from repro.core.interfaces import SpatialAccessMethod
from repro.geometry.rect import Rect
from repro.storage import layout
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore
from repro.storage.soa import soa_field
from repro.query import traverse

__all__ = ["RTree"]

_SPLIT_POLICIES = ("guttman", "greene", "margin")


class _Node:
    """An R-tree page: entries are (rect, child pid) or (rect, rid).

    ``rects`` is a struct-of-arrays container: the fused bound arrays the
    vectorized traversal evaluates live on the page itself and are
    invalidated by the container's own mutators (see
    :mod:`repro.storage.soa`).
    """

    __slots__ = ("is_leaf", "_soa_rects", "children")

    rects = soa_field()

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.rects: list[Rect] = []
        self.children: list = []  # pids for inner nodes, rids for leaves


class RTree(SpatialAccessMethod):
    """An R-tree storing axis-parallel rectangles."""

    def __init__(
        self,
        store: PageStore,
        dims: int = 2,
        min_fill: float = 0.3,
        split_policy: str = "guttman",
    ):
        super().__init__(store, dims, layout.rect_record_size(dims))
        if split_policy not in _SPLIT_POLICIES:
            raise ValueError(f"unknown split policy {split_policy!r}")
        if not 0.0 < min_fill <= 0.5:
            raise ValueError("min_fill must be in (0, 0.5]")
        self.split_policy = split_policy
        entry_size = 2 * dims * layout.COORD_SIZE + layout.POINTER_SIZE
        self._capacity = layout.directory_page_payload(store.page_size) // entry_size
        self._min_entries = max(1, int(self._capacity * min_fill))
        self._root_pid = store.allocate(PageKind.DATA, _Node(is_leaf=True))
        store.pin(self._root_pid)
        store.write(self._root_pid)
        self._height = 0

    # -- plumbing --------------------------------------------------------

    @property
    def record_capacity(self) -> int:
        return self._capacity

    @property
    def directory_height(self) -> int:
        """Number of inner levels above the leaves."""
        return self._height

    def iter_records(self):
        """Uncharged walk of every stored ``(rect, rid)`` entry."""
        stack = [self._root_pid]
        while stack:
            node: _Node = self.store.peek(stack.pop())
            if node.is_leaf:
                yield from zip(node.rects, node.children)
            else:
                stack.extend(node.children)

    def _snapshot_pages(self):
        """Uncharged :class:`PageView` walk (see :mod:`repro.obs.structure`)."""
        from repro.obs.structure import PageView

        queue: list[tuple[int, int, Rect | None]] = [(self._root_pid, 0, None)]
        i = 0
        while i < len(queue):
            pid, depth, region = queue[i]
            i += 1
            node: _Node = self.store.peek(pid)
            if node.is_leaf:
                yield PageView(
                    pid=pid,
                    kind="data",
                    depth=depth,
                    regions=(region,) if region is not None else (),
                    records=len(node.rects),
                    capacity=self._capacity,
                    content=Rect.bounding(node.rects) if node.rects else None,
                )
                continue
            yield PageView(
                pid=pid,
                kind="directory",
                depth=depth,
                regions=(region,) if region is not None else (),
                records=len(node.rects),
                capacity=self._capacity,
                children=tuple(node.children),
                entry_regions=tuple(node.rects),
            )
            for rect, child in zip(node.rects, node.children):
                queue.append((child, depth + 1, rect))

    # -- insertion ----------------------------------------------------------

    def _insert(self, rect: Rect, rid: object) -> None:
        split = self._insert_into(self._root_pid, rect, rid)
        if split is not None:
            self._grow_root(split)

    def _insert_into(self, pid: int, rect: Rect, rid: object):
        """Insert below ``pid``; returns (rect, pid) of a split-off sibling."""
        node: _Node = self.store.read(pid)
        if node.is_leaf:
            node.rects.append(rect)
            node.children.append(rid)
            if len(node.rects) <= self._capacity:
                self.store.write(pid)
                return None
            return self._split(pid, node)
        slot = self._choose_subtree(node, rect)
        node.rects[slot] = node.rects[slot].union(rect)
        split = self._insert_into(node.children[slot], rect, rid)
        if split is not None:
            # The child lost entries to its new sibling: recompute its
            # minimal bounding rectangle instead of keeping the union.
            child: _Node = self.store._objects[node.children[slot]]
            node.rects[slot] = Rect.bounding(child.rects)
            sibling_rect, sibling_pid = split
            node.rects.append(sibling_rect)
            node.children.append(sibling_pid)
        self.store.write(pid)
        if len(node.rects) <= self._capacity:
            return None
        return self._split(pid, node)

    def _choose_subtree(self, node: _Node, rect: Rect) -> int:
        """Least-enlargement child, ties by smallest area (Guttman)."""
        best, best_key = 0, None
        for i, r in enumerate(node.rects):
            key = (r.enlargement(rect), r.area())
            if best_key is None or key < best_key:
                best, best_key = i, key
        return best

    def _grow_root(self, split: tuple[Rect, int]) -> None:
        sibling_rect, sibling_pid = split
        old_root: _Node = self.store._objects[self._root_pid]
        old_rect = Rect.bounding(old_root.rects)
        new_root = _Node(is_leaf=False)
        new_root.rects = [old_rect, sibling_rect]
        new_root.children = [self._root_pid, sibling_pid]
        self.store.unpin(self._root_pid)
        self._root_pid = self.store.allocate(PageKind.DIRECTORY, new_root)
        self.store.pin(self._root_pid)
        self.store.write(self._root_pid)
        self._height += 1

    # -- splitting -------------------------------------------------------------

    def _split(self, pid: int, node: _Node) -> tuple[Rect, int]:
        """Split an overflowing node; returns the new sibling's (rect, pid)."""
        entries = list(zip(node.rects, node.children))
        if self.split_policy == "guttman":
            left, right = self._split_guttman(entries)
        elif self.split_policy == "greene":
            left, right = self._split_greene(entries)
        else:
            left, right = self._split_margin(entries)
        node.rects = [r for r, _ in left]
        node.children = [c for _, c in left]
        sibling = _Node(is_leaf=node.is_leaf)
        sibling.rects = [r for r, _ in right]
        sibling.children = [c for _, c in right]
        kind = PageKind.DATA if node.is_leaf else PageKind.DIRECTORY
        sibling_pid = self.store.allocate(kind, sibling)
        self.store.write(pid)
        self.store.write(sibling_pid)
        return Rect.bounding(sibling.rects), sibling_pid

    def _pick_seeds(self, entries: list) -> tuple[int, int]:
        """Quadratic seed pick: the pair wasting the most area."""
        worst, pair = -1.0, (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                waste = (
                    entries[i][0].union(entries[j][0]).area()
                    - entries[i][0].area()
                    - entries[j][0].area()
                )
                if waste > worst:
                    worst, pair = waste, (i, j)
        return pair

    def _split_guttman(self, entries: list) -> tuple[list, list]:
        i, j = self._pick_seeds(entries)
        left, right = [entries[i]], [entries[j]]
        left_rect, right_rect = entries[i][0], entries[j][0]
        rest = [e for k, e in enumerate(entries) if k not in (i, j)]
        while rest:
            # Force assignment when one side must take everything left.
            if len(left) + len(rest) <= self._min_entries:
                left.extend(rest)
                break
            if len(right) + len(rest) <= self._min_entries:
                right.extend(rest)
                break
            # PickNext: entry with the largest preference difference.
            best_k, best_diff = 0, -1.0
            for k, (rect, _) in enumerate(rest):
                diff = abs(left_rect.enlargement(rect) - right_rect.enlargement(rect))
                if diff > best_diff:
                    best_k, best_diff = k, diff
            rect, child = rest.pop(best_k)
            grow_left = left_rect.enlargement(rect)
            grow_right = right_rect.enlargement(rect)
            key = (grow_left, left_rect.area(), len(left))
            other = (grow_right, right_rect.area(), len(right))
            if key <= other:
                left.append((rect, child))
                left_rect = left_rect.union(rect)
            else:
                right.append((rect, child))
                right_rect = right_rect.union(rect)
        return left, right

    def _split_greene(self, entries: list) -> tuple[list, list]:
        i, j = self._pick_seeds(entries)
        # Choose the axis with the greatest normalised seed separation.
        best_axis, best_sep = 0, -1.0
        for axis in range(self.dims):
            lo = min(r.lo[axis] for r, _ in entries)
            hi = max(r.hi[axis] for r, _ in entries)
            width = hi - lo or 1.0
            sep = (
                max(entries[i][0].lo[axis], entries[j][0].lo[axis])
                - min(entries[i][0].hi[axis], entries[j][0].hi[axis])
            ) / width
            if sep > best_sep:
                best_axis, best_sep = axis, sep
        ordered = sorted(entries, key=lambda e: e[0].lo[best_axis])
        half = len(ordered) // 2
        return ordered[:half], ordered[half:]

    def _split_margin(self, entries: list) -> tuple[list, list]:
        best = None
        best_margin = float("inf")
        for axis in range(self.dims):
            ordered = sorted(entries, key=lambda e: (e[0].lo[axis], e[0].hi[axis]))
            for cut in range(self._min_entries, len(ordered) - self._min_entries + 1):
                left, right = ordered[:cut], ordered[cut:]
                margin = (
                    Rect.bounding([r for r, _ in left]).margin()
                    + Rect.bounding([r for r, _ in right]).margin()
                )
                if margin < best_margin:
                    best_margin = margin
                    best = (left, right)
        if best is None:  # capacity too small for the fill bounds
            half = len(entries) // 2
            return entries[:half], entries[half:]
        return best

    # -- queries ---------------------------------------------------------------------

    #: Scalar fallbacks for the op tags of scan.select_boxes.
    _SCALAR_PRED = {
        "isect": lambda r, q: r.intersects(q),
        "within": lambda r, q: q.contains_rect(r),
        "encl": lambda r, q: r.contains_rect(q),
    }

    def _collect(self, inner_op: str, leaf_op: str, query: Rect) -> list[object]:
        store = self.store
        if store.columnar is None:
            return self._collect_scalar(inner_op, leaf_op, query)
        # Plan: level-at-a-time frontier expansion over uncharged page
        # views; every cold page of one level rides a single fused kernel
        # call (see repro.query.traverse).
        objects = store._objects
        src = traverse.RowSource(store.columnar, query)
        keys = {True: "entries:" + leaf_op, False: "entries:" + inner_op}
        ops = {True: leaf_op, False: inner_op}
        row_of = src.row
        views = {True: traverse.box_view(leaf_op), False: traverse.box_view(inner_op)}
        # Promoted pages answer straight from the workload's CSR verdicts;
        # probing them inline skips the RowSource call for the common case
        # (the rows are the same lists row() would return).
        workload = src.workload
        hot = workload._rows if workload is not None else None
        qi = workload.index if workload is not None else -1
        verdicts: dict[int, list] = {}
        # Inner pages keep their expanded child-pid list: the plan needs
        # it for the next frontier and the replay pushes the same list,
        # so it is computed exactly once per page.
        expansion: dict[int, list] = {}
        level = [self._root_pid]
        while level:
            nxt: list = []
            deferred: list = []
            for pid in level:
                node = objects[pid]
                leaf = node.is_leaf
                rects = node.rects
                if not rects:
                    verdicts[pid] = traverse._EMPTY_ROW
                    if not leaf:
                        expansion[pid] = traverse._EMPTY_ROW
                    continue
                row = None
                if hot is not None:
                    entry = hot.get((pid, keys[leaf]))
                    if entry is not None:
                        starts, cols = entry
                        s = starts[qi]
                        e = starts[qi + 1]
                        if e == s:
                            verdicts[pid] = traverse._EMPTY_ROW
                            if not leaf:
                                expansion[pid] = traverse._EMPTY_ROW
                            continue
                        row = cols[s:e].tolist()
                if row is None:
                    tag, build = views[leaf]
                    row = row_of(pid, keys[leaf], ops[leaf], rects, tag, build)
                if row is None:
                    deferred.append(pid)
                elif leaf:
                    verdicts[pid] = row
                else:
                    verdicts[pid] = row
                    children = node.children
                    kids = expansion[pid] = [children[i] for i in row]
                    nxt.extend(kids)
            if deferred:
                rows = src.flush()
                for pid in deferred:
                    node = objects[pid]
                    leaf = node.is_leaf
                    row = verdicts[pid] = rows[(pid, keys[leaf])]
                    if not leaf:
                        children = node.children
                        kids = expansion[pid] = [children[i] for i in row]
                        nxt.extend(kids)
            level = nxt
        # Replay: the original descent order with real (charged) reads,
        # consuming the precomputed verdict rows — accesses, buffer state
        # and observer events are those of the scalar path by construction.
        result: list[object] = []
        read = store.read
        stack = [self._root_pid]
        while stack:
            pid = stack.pop()
            node = read(pid)
            if node.is_leaf:
                row = verdicts[pid]
                if row:
                    children = node.children
                    result.extend([children[i] for i in row])
            else:
                stack.extend(expansion[pid])
        return result

    def _collect_scalar(self, inner_op: str, leaf_op: str, query: Rect) -> list[object]:
        """The original scalar descent (the ``REPRO_VECTOR=0`` kill switch)."""
        result: list[object] = []
        stack = [self._root_pid]
        while stack:
            pid = stack.pop()
            node: _Node = self.store.read(pid)
            op = leaf_op if node.is_leaf else inner_op
            pred = self._SCALAR_PRED[op]
            out = result if node.is_leaf else stack
            out.extend(
                child
                for rect, child in zip(node.rects, node.children)
                if pred(rect, query)
            )
        return result

    def _point_query(self, point: tuple[float, ...]) -> list[object]:
        # contains_point(p) == contains_rect(degenerate box at p), exactly.
        return self._collect("encl", "encl", Rect.from_point(point))

    def _intersection(self, query: Rect) -> list[object]:
        return self._collect("isect", "isect", query)

    def _containment(self, query: Rect) -> list[object]:
        # Contained rectangles intersect the query, and no stronger
        # pruning is possible on inner levels: this is why the paper's
        # R-tree containment costs equal its intersection costs.
        return self._collect("isect", "within", query)

    def _enclosure(self, query: Rect) -> list[object]:
        return self._collect("encl", "encl", query)

    # -- deletion (extension) -----------------------------------------------------------

    def delete(self, rect: Rect, rid: object) -> bool:
        """Remove one rectangle; underfull nodes are condensed and their
        entries reinserted, per Guttman's CondenseTree."""
        self.store.begin_operation()
        found = self._find_leaf(self._root_pid, rect, rid, [])
        if found is None:
            return False
        path, leaf_pid = found
        leaf: _Node = self.store._objects[leaf_pid]
        slot = next(
            i
            for i, (r, c) in enumerate(zip(leaf.rects, leaf.children))
            if r == rect and c == rid
        )
        del leaf.rects[slot]
        del leaf.children[slot]
        self.store.write(leaf_pid)
        self._records -= 1
        orphans: list[tuple[Rect, object]] = []
        self._condense(path, leaf_pid, orphans)
        for orphan_rect, orphan_rid in orphans:
            self._insert(orphan_rect, orphan_rid)
        self._shrink_root()
        return True

    def _find_leaf(self, pid: int, rect: Rect, rid: object, path: list[int]):
        node: _Node = self.store.read(pid)
        if node.is_leaf:
            for r, c in zip(node.rects, node.children):
                if r == rect and c == rid:
                    return list(path), pid
            return None
        for r, child in zip(node.rects, node.children):
            if r.contains_rect(rect):
                found = self._find_leaf(child, rect, rid, path + [pid])
                if found is not None:
                    return found
        return None

    def _condense(self, path: list[int], pid: int, orphans: list) -> None:
        for parent_pid in reversed(path):
            parent: _Node = self.store._objects[parent_pid]
            node: _Node = self.store._objects[pid]
            slot = parent.children.index(pid)
            if len(node.rects) < self._min_entries and len(parent.children) > 1:
                if node.is_leaf:
                    orphans.extend(zip(node.rects, node.children))
                else:
                    # Reinsert whole subtrees record-by-record, freeing
                    # every page under the condensed node.
                    stack = list(node.children)
                    while stack:
                        sub_pid = stack.pop()
                        sub: _Node = self.store._objects[sub_pid]
                        if sub.is_leaf:
                            orphans.extend(zip(sub.rects, sub.children))
                        else:
                            stack.extend(sub.children)
                        self.store.free(sub_pid)
                del parent.rects[slot]
                del parent.children[slot]
                self.store.free(pid)
            elif node.rects:
                parent.rects[slot] = Rect.bounding(node.rects)
            self.store.write(parent_pid)
            pid = parent_pid

    def _shrink_root(self) -> None:
        root: _Node = self.store._objects[self._root_pid]
        while not root.is_leaf and len(root.children) == 1:
            child_pid = root.children[0]
            self.store.unpin(self._root_pid)
            self.store.free(self._root_pid)
            self._root_pid = child_pid
            self.store.pin(child_pid)
            self._height -= 1
            root = self.store._objects[self._root_pid]
