"""Filter-and-refine polygon indexing over any rectangle SAM (§9).

§6 of the paper: "Although a lot of information is lost, MBRs of spatial
objects preserve the most essential geometric properties of the object"
— every SAM of the comparison indexes minimal bounding rectangles, and a
polygon query runs in two steps:

1. **filter** — the underlying SAM returns the candidates whose MBR
   satisfies the query;
2. **refine** — the candidates' exact geometry is fetched from *object
   pages* (polygons are too large for directory entries) and tested
   exactly; candidates that fail are the *false drops* whose count
   measures the MBR approximation quality.

This is the §9 "further work" step made concrete; the polygon example
compares false-drop rates and access counts across the SAMs.
"""

from __future__ import annotations

from typing import Callable

from repro.core.interfaces import SpatialAccessMethod
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect
from repro.storage import layout
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore

__all__ = ["PolygonIndex"]


class _ObjectPage:
    """An object page holding the exact geometry of a few polygons."""

    __slots__ = ("polygons",)

    def __init__(self) -> None:
        self.polygons: dict[object, ConvexPolygon] = {}


class PolygonIndex:
    """Convex polygons indexed by their MBRs in an underlying SAM.

    Parameters
    ----------
    store:
        The shared page store (the SAM and the object pages both live
        in it, so access counts cover filter *and* refine).
    sam_factory:
        Builds the filter structure, e.g. ``lambda s, dims: RTree(s, dims)``.
    vertex_budget:
        Polygons per object page are computed from this many vertices
        (8 bytes each) plus a record header.
    """

    def __init__(
        self,
        store: PageStore,
        sam_factory: Callable[..., SpatialAccessMethod],
        vertex_budget: int = 16,
    ):
        self.store = store
        self.sam = sam_factory(store, dims=2)
        polygon_bytes = vertex_budget * 2 * layout.COORD_SIZE + layout.POINTER_SIZE
        self._per_page = max(1, layout.directory_page_payload(store.page_size) // polygon_bytes)
        self._object_pages: list[int] = []
        self._page_of: dict[object, int] = {}
        self._count = 0
        #: False drops of the most recent query (refinement failures).
        self.last_false_drops = 0

    def __len__(self) -> int:
        return self._count

    # -- building ---------------------------------------------------------

    def insert(self, polygon: ConvexPolygon, rid: object) -> None:
        """Index one polygon: MBR into the SAM, geometry onto object pages."""
        self.sam.insert(polygon.bounding_rect(), rid)
        if (
            not self._object_pages
            or len(self.store._objects[self._object_pages[-1]].polygons)
            >= self._per_page
        ):
            pid = self.store.allocate(PageKind.DATA, _ObjectPage())
            self._object_pages.append(pid)
        pid = self._object_pages[-1]
        page: _ObjectPage = self.store.read(pid)
        page.polygons[rid] = polygon
        self._page_of[rid] = pid
        self.store.write(pid)
        self._count += 1

    # -- refinement -----------------------------------------------------------

    def _refine(self, candidates: list[object], predicate) -> list[object]:
        hits = []
        self.last_false_drops = 0
        for rid in candidates:
            page: _ObjectPage = self.store.read(self._page_of[rid])
            if predicate(page.polygons[rid]):
                hits.append(rid)
            else:
                self.last_false_drops += 1
        return hits

    # -- queries ------------------------------------------------------------------

    def point_query(self, point: tuple[float, float]) -> list[object]:
        """Polygons that exactly contain ``point``."""
        candidates = self.sam.point_query(point)
        return self._refine(candidates, lambda poly: poly.contains_point(point))

    def window_query(self, window: Rect) -> list[object]:
        """Polygons exactly intersecting the query window."""
        candidates = self.sam.intersection(window)
        return self._refine(candidates, lambda poly: poly.intersects_rect(window))

    def containment_query(self, window: Rect) -> list[object]:
        """Polygons entirely inside the query window.

        MBR containment already implies polygon containment, so this
        query needs no refinement — the rectangle filter is exact.
        """
        self.last_false_drops = 0
        return self.sam.containment(window)
