"""Spatial access methods for rectangles (Part II of the paper).

The four compared SAMs:

* :class:`repro.sam.rtree.RTree` — the measuring stick (overlapping
  regions by construction), with Guttman's, Greene's and a
  minimal-margin split policy.
* :class:`repro.sam.transformation.TransformationSAM` — any PAM over
  the 2d-dimensional corner (or center) representation; the paper runs
  it over BANG and BUDDY.
* :class:`repro.sam.overlapping.OverlappingPlop` — the
  overlapping-regions scheme over PLOP hashing per [SK 88].
* :class:`repro.sam.clipping.ClippingSAM` — redundant z-region
  decomposition over a B+-tree (the clipping technique; Orenstein's
  redundancy trade-off).
* :class:`repro.sam.rplustree.RPlusTree` — the R+-tree [SFR 87], the
  clipping principle applied to the R-tree itself.
"""

from repro.sam.clipping import ClippingSAM
from repro.sam.overlapping import OverlappingPlop
from repro.sam.rplustree import RPlusTree
from repro.sam.rtree import RTree
from repro.sam.transformation import TransformationSAM

__all__ = ["ClippingSAM", "OverlappingPlop", "RPlusTree", "RTree", "TransformationSAM"]
