"""The transformation technique: rectangles as higher-dimensional points.

A d-dimensional rectangle becomes a 2d-dimensional point, stored in any
point access method:

* **corner representation** — ``(lo_1..lo_d, hi_1..hi_d)``;
* **center representation** — ``(c_1..c_d, e_1..e_d)`` with center ``c``
  and extents ``e`` [NH 85].

All four rectangle query types translate to a single 2d-dimensional
range query; in the corner representation the translation is *exact*
(the query region is a box), while in the center representation the
exact query region is a cone that must be over-approximated by its
bounding box (tightened with the largest extent seen per axis) and
post-filtered.  This asymmetry is why Seeger's thesis [See 89] measured
the corner representation at roughly half the page accesses of the
center representation — reproduced by the representation ablation
bench.

The paper runs this technique over BANG and BUDDY; any
:class:`~repro.core.interfaces.PointAccessMethod` factory works here.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.interfaces import PointAccessMethod, SpatialAccessMethod
from repro.core.stats import BuildMetrics
from repro.geometry import kernels
from repro.geometry.rect import Rect
from repro.storage.pagestore import PageStore

__all__ = ["TransformationSAM"]

_REPRESENTATIONS = ("corner", "center")


class TransformationSAM(SpatialAccessMethod):
    """Rectangles stored as 2d-dimensional points in an underlying PAM.

    Parameters
    ----------
    store:
        The shared page store.
    pam_factory:
        Called as ``pam_factory(store, dims=2 * dims)`` to build the
        underlying point access method (e.g. ``BuddyTree`` or
        ``BangFile``).
    dims:
        Dimensionality of the stored rectangles.
    representation:
        ``"corner"`` (the paper's choice) or ``"center"``.
    bounded_extents:
        Only meaningful for the center representation.  The published
        scheme [NH 85] bounds extents only by the data space
        (``e <= 0.5``), which makes its transformed query boxes huge —
        the reason corner needs about half the accesses of center in
        [See 89].  Setting this to ``True`` tightens the boxes with the
        largest extent actually stored (an in-core scalar per axis), an
        improvement the representation ablation bench quantifies.
    """

    def __init__(
        self,
        store: PageStore,
        pam_factory: Callable[..., PointAccessMethod],
        dims: int = 2,
        representation: str = "corner",
        bounded_extents: bool = False,
    ):
        if representation not in _REPRESENTATIONS:
            raise ValueError(f"unknown representation {representation!r}")
        self.pam = pam_factory(store, dims=2 * dims)
        super().__init__(store, dims, self.pam.record_size)
        self.representation = representation
        self.bounded_extents = bounded_extents
        #: Largest extent seen per axis; used only with bounded_extents.
        self._max_extent = [0.0] * dims

    # -- plumbing ---------------------------------------------------------

    @property
    def record_capacity(self) -> int:
        return self.pam.record_capacity

    @property
    def directory_height(self) -> int:
        return self.pam.directory_height

    def iter_records(self):
        """Uncharged walk: the PAM's points mapped back to rectangles."""
        for point, rid in self.pam.iter_records():
            yield self._to_rect(point), rid

    def _snapshot_pages(self):
        """Delegate to the underlying PAM: its pages are this SAM's pages.

        The page geometry lives in the 2d-dimensional transform space,
        so the redundancy volumes of a snapshot are 2d-dim volumes.
        """
        yield from self.pam._snapshot_pages()

    def metrics(self) -> BuildMetrics:
        """Metrics come from the underlying PAM, with this SAM's build cost."""
        inner = self.pam.metrics()
        return BuildMetrics(
            storage_utilization=inner.storage_utilization,
            dir_data_ratio=inner.dir_data_ratio,
            insert_cost=self._insert_accesses / self._records if self._records else 0.0,
            height=inner.height,
            records=self._records,
            data_pages=inner.data_pages,
            directory_pages=inner.directory_pages,
            pinned_pages=inner.pinned_pages,
        )

    # -- the transform -------------------------------------------------------

    def _to_point(self, rect: Rect) -> tuple[float, ...]:
        if self.representation == "corner":
            return rect.lo + rect.hi
        center = rect.center
        extents = tuple((h - l) / 2.0 for l, h in zip(rect.lo, rect.hi))
        return center + extents

    def _to_rect(self, point: tuple[float, ...]) -> Rect:
        d = self.dims
        if self.representation == "corner":
            return Rect(point[:d], point[d:])
        lo = tuple(c - e for c, e in zip(point[:d], point[d:]))
        hi = tuple(c + e for c, e in zip(point[:d], point[d:]))
        return Rect(lo, hi)

    # -- operations --------------------------------------------------------------

    def _insert(self, rect: Rect, rid: object) -> None:
        for axis in range(self.dims):
            self._max_extent[axis] = max(
                self._max_extent[axis], (rect.hi[axis] - rect.lo[axis]) / 2.0
            )
        # The PAM's private hook is used on purpose: this insert is one
        # operation of *this* SAM, so the PAM must not restart the
        # operation bracket; its record count is kept in step by hand.
        self.pam._insert(self._to_point(rect), rid)
        self.pam._records += 1

    def _extent_bound(self) -> list[float]:
        """Per-axis upper bound on stored half-extents for query boxes."""
        if self.bounded_extents:
            return list(self._max_extent)
        return [0.5] * self.dims

    #: Scalar post-filters and their vectorized counterparts, by op tag.
    _SCALAR_PRED = {
        "isect": lambda r, q: r.intersects(q),
        "within": lambda r, q: q.contains_rect(r),
        "encl": lambda r, q: r.contains_rect(q),
    }
    _KERNELS = {
        "isect": kernels.boxes_intersect,
        "within": kernels.boxes_within,
        "encl": kernels.boxes_enclose,
    }

    def _transformed_query(self, query_box: Rect | None, op: str, query: Rect) -> list[object]:
        """Run one 2d-dim range query, post-filtering with the ``op`` predicate."""
        if query_box is None:
            return []
        candidates = self.pam._range_query(query_box)
        if self.store.columnar is None or len(candidates) < 2:
            predicate = self._SCALAR_PRED[op]
            return [
                rid
                for point, rid in candidates
                if predicate(self._to_rect(point), query)
            ]
        # Vectorized post-filter: undo the transform on the whole candidate
        # set at once.  The center-representation arithmetic (c - e, c + e)
        # is the same float64 operation as _to_rect, so verdicts are
        # bit-identical to the scalar path.
        d = self.dims
        pts = np.array([point for point, _ in candidates], dtype=float)
        if self.representation == "corner":
            lo, hi = pts[:, :d], pts[:, d:]
        else:
            lo = pts[:, :d] - pts[:, d:]
            hi = pts[:, :d] + pts[:, d:]
        mask = self._KERNELS[op](
            lo,
            hi,
            np.asarray(query.lo, dtype=float),
            np.asarray(query.hi, dtype=float),
        )
        return [candidates[i][1] for i in np.nonzero(mask)[0]]

    def _corner_box(self, lo_lo, lo_hi, hi_lo, hi_hi) -> Rect:
        """Box over (lo-part range, hi-part range) in corner space."""
        return Rect(tuple(lo_lo) + tuple(hi_lo), tuple(lo_hi) + tuple(hi_hi))

    def _center_box(self, c_lo, c_hi, e_lo, e_hi) -> Rect | None:
        """Bounding box in center space; ``None`` when provably empty."""

        def clip(value: float) -> float:
            return max(0.0, min(1.0, value))

        lo = tuple(clip(v) for v in c_lo) + tuple(max(0.0, v) for v in e_lo)
        hi = tuple(clip(v) for v in c_hi) + tuple(min(1.0, v) for v in e_hi)
        if any(l > h for l, h in zip(lo, hi)):
            return None
        return Rect(lo, hi)

    def _query_box(self, kind: str, query) -> Rect | None:
        """The transformed 2d-dim query box for one query of type ``kind``.

        ``query`` is a point tuple for ``"point"``, a :class:`Rect`
        otherwise.  Factored out of the query methods so the workload
        registration (:meth:`_workload_rects`) can announce exactly the
        boxes the underlying PAM will scan with.
        """
        zeros = (0.0,) * self.dims
        ones = (1.0,) * self.dims
        if kind == "point":
            point = query
            if self.representation == "corner":
                return self._corner_box(zeros, point, point, ones)
            e = self._extent_bound()
            return self._center_box(
                [p - e[a] for a, p in enumerate(point)],
                [p + e[a] for a, p in enumerate(point)],
                zeros,
                e,
            )
        if kind == "intersection":
            if self.representation == "corner":
                return self._corner_box(zeros, query.hi, query.lo, ones)
            e = self._extent_bound()
            return self._center_box(
                [l - e[a] for a, l in enumerate(query.lo)],
                [h + e[a] for a, h in enumerate(query.hi)],
                zeros,
                e,
            )
        if kind == "containment":
            if self.representation == "corner":
                return self._corner_box(query.lo, query.hi, query.lo, query.hi)
            e = self._extent_bound()
            half = [(h - l) / 2.0 for l, h in zip(query.lo, query.hi)]
            return self._center_box(
                query.lo,
                query.hi,
                (0.0,) * self.dims,
                [min(e[a], half[a]) for a in range(self.dims)],
            )
        if kind == "enclosure":
            if self.representation == "corner":
                return self._corner_box(zeros, query.lo, query.hi, ones)
            e = self._extent_bound()
            half = [(h - l) / 2.0 for l, h in zip(query.lo, query.hi)]
            return self._center_box(
                [h - e[a] for a, h in enumerate(query.hi)],
                [l + e[a] for a, l in enumerate(query.lo)],
                half,
                e,
            )
        raise ValueError(f"unknown query kind {kind!r}")

    def _workload_rects(self, kind: str, queries: Sequence) -> list:
        """The boxes the *underlying PAM* scans with are the transformed
        query boxes, not the raw queries — register those instead."""
        if kind == "point":
            return [
                self._query_box("point", tuple(float(c) for c in p))
                for p in queries
            ]
        return [self._query_box(kind, q) for q in queries]

    def _point_query(self, point: tuple[float, ...]) -> list[object]:
        # contains_point(p) == contains_rect(degenerate box at p), exactly.
        box = self._query_box("point", point)
        return self._transformed_query(box, "encl", Rect.from_point(point))

    def _intersection(self, query: Rect) -> list[object]:
        box = self._query_box("intersection", query)
        return self._transformed_query(box, "isect", query)

    def _containment(self, query: Rect) -> list[object]:
        box = self._query_box("containment", query)
        return self._transformed_query(box, "within", query)

    def _enclosure(self, query: Rect) -> list[object]:
        box = self._query_box("enclosure", query)
        return self._transformed_query(box, "encl", query)