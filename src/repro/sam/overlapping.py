"""The overlapping-regions technique over PLOP hashing, per [SK 88].

Rectangles are hashed by their **center** into the directory-less PLOP
grid.  Because the scheme has no directory, a query cannot know any
per-bucket bounding boxes; all it can use is arithmetic on the slice
boundaries plus two in-core scalars per axis — the largest extension
ever stored.  A query therefore reads *every bucket whose cell
intersects the query window expanded by the maximum extensions*, then
walks each bucket's full overflow chain.

This is what makes PLOP the loser of the paper's SAM comparison on the
Uniformlarge and Diagonal files: with extensions up to 0.5 the expanded
window degenerates to the whole data space.  It also reproduces the
table detail that PLOP's containment cost *equals* its intersection
cost — both use the same candidate window.
"""

from __future__ import annotations

from repro.core.interfaces import SpatialAccessMethod
from repro.geometry.rect import Rect
from repro.pam.plop import _PlopGrid, snapshot_plop_pages
from repro.storage import layout
from repro.storage.pagestore import PageStore
from repro.query import traverse

__all__ = ["OverlappingPlop"]


class OverlappingPlop(SpatialAccessMethod):
    """PLOP hashing extended to rectangles with overlapping bucket regions."""

    def __init__(self, store: PageStore, dims: int = 2):
        super().__init__(store, dims, layout.rect_record_size(dims))
        capacity = layout.data_page_capacity(self.record_size, store.page_size)
        self._grid = _PlopGrid(
            store, dims, capacity, key_of=lambda record: record[0].center
        )
        #: Largest half-extension stored so far, per axis (in-core).
        self._max_extent = [0.0] * dims

    # -- plumbing ----------------------------------------------------------

    @property
    def record_capacity(self) -> int:
        return self._grid.capacity

    @property
    def directory_height(self) -> int:
        """No directory: bucket addresses are computed arithmetically."""
        return 0

    def iter_records(self):
        """Uncharged walk of every stored ``(rect, rid)`` entry."""
        return self._grid.iter_all()

    def _snapshot_pages(self):
        """Uncharged :class:`PageView` walk (see :mod:`repro.obs.structure`).

        Bucket regions overlap the stored rectangles only at their
        centers, so data-page content MBRs (the true bucket extents)
        usually poke outside the slice-product region — that spill is
        the technique's overlap, visible as ``dead_space`` staying 0
        while coverage misses the content.
        """

        def content_of(records):
            if not records:
                return None
            return Rect.bounding([rect for rect, _ in records])

        yield from snapshot_plop_pages(self._grid, content_of)

    # -- operations ------------------------------------------------------------

    def _insert(self, rect: Rect, rid: object) -> None:
        for axis in range(self.dims):
            self._max_extent[axis] = max(
                self._max_extent[axis], (rect.hi[axis] - rect.lo[axis]) / 2.0
            )
        self._grid.insert((rect, rid))

    #: Scalar fallbacks for the op tags of scan.select_rect_values.
    _SCALAR_PRED = {
        "isect": lambda r, q: r.intersects(q),
        "within": lambda r, q: q.contains_rect(r),
        "encl": lambda r, q: r.contains_rect(q),
    }

    def _scan_window(self, lo, hi, op: str, query: Rect) -> list[object]:
        """Read every bucket whose cell meets ``[lo, hi]`` and filter."""
        if any(l > h for l, h in zip(lo, hi)):
            return []
        ranges = [
            self._grid.index_range(axis, lo[axis], hi[axis])
            for axis in range(self.dims)
        ]
        if any(r.start >= r.stop for r in ranges):
            return []
        store = self.store
        vector = store.columnar is not None
        src = traverse.RowSource(store.columnar, query) if vector else None
        predicate = self._SCALAR_PRED[op]
        rowkey = "vrects:" + op
        vtag, vbuild = traverse.value_view(op)
        occurrences: list = []
        result: list[object] = []
        idx = [r.start for r in ranges]
        # Inlined _PlopGrid.iter_chain_pages — same reads, same order,
        # without a generator resume per chain page (this loop touches
        # every bucket of the expanded window, the technique's hot spot).
        buckets = self._grid.buckets
        read = store.read
        # Hot-page fast path: the expanded windows revisit every bucket,
        # so after promotion nearly all pages answer from the workload's
        # CSR verdicts — probe those directly and only route cold pages
        # through the RowSource (verdicts are the same lists either way).
        workload = src.workload if vector else None
        hot = workload._rows if workload is not None else None
        qi = workload.index if workload is not None else -1
        while True:
            bucket = buckets.get(tuple(idx))
            for pid in bucket.chain if bucket is not None else ():
                records = read(pid).records
                if not records:
                    continue
                if vector:
                    if hot is not None:
                        entry = hot.get((pid, rowkey))
                        if entry is not None:
                            starts, cols = entry
                            s = starts[qi]
                            e = starts[qi + 1]
                            if e > s:
                                occurrences.append(
                                    (pid, records, cols[s:e].tolist())
                                )
                            continue
                    # Read-then-batch: reads stay in the original order;
                    # evaluation is deferred into one fused call below.
                    src.row(pid, rowkey, op, records, vtag, vbuild)
                    occurrences.append((pid, records, None))
                else:
                    for rect, rid in records:
                        if predicate(rect, query):
                            result.append(rid)
            axis = 0
            while axis < self.dims:
                idx[axis] += 1
                if idx[axis] < ranges[axis].stop:
                    break
                idx[axis] = ranges[axis].start
                axis += 1
            if axis == self.dims:
                break
        if vector:
            rows = src.flush()
            for pid, records, row in occurrences:
                if row is None:
                    row = rows[(pid, rowkey)]
                result.extend([records[i][1] for i in row])
        return result

    def _expanded(self, query: Rect) -> tuple[list[float], list[float]]:
        lo = [query.lo[a] - self._max_extent[a] for a in range(self.dims)]
        hi = [query.hi[a] + self._max_extent[a] for a in range(self.dims)]
        return lo, hi

    def _point_query(self, point: tuple[float, ...]) -> list[object]:
        # contains_point(p) == contains_rect(degenerate box at p), exactly.
        query = Rect.from_point(point)
        lo, hi = self._expanded(query)
        return self._scan_window(lo, hi, "encl", query)

    def _intersection(self, query: Rect) -> list[object]:
        lo, hi = self._expanded(query)
        return self._scan_window(lo, hi, "isect", query)

    def _containment(self, query: Rect) -> list[object]:
        # The same candidate window as intersection — the reason the
        # paper's PLOP rows show identical intersection and containment
        # costs.
        lo, hi = self._expanded(query)
        return self._scan_window(lo, hi, "within", query)

    def _enclosure(self, query: Rect) -> list[object]:
        # An enclosing rectangle's center must lie within max-extension
        # reach of every side of the query.
        lo = [query.hi[a] - self._max_extent[a] for a in range(self.dims)]
        hi = [query.lo[a] + self._max_extent[a] for a in range(self.dims)]
        return self._scan_window(lo, hi, "encl", query)
