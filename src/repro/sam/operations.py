"""Spatial join and nearest-neighbour search — the missing operations.

§8 of the paper, explaining why the SAM comparison is harder than the
PAM comparison: "there are additional important operations and queries
such as spatial join ('overlay two maps') and near neighbor-type
queries".  The comparison itself never measures them; this module
supplies both operations so the extension bench can:

* :func:`rtree_join` — the synchronised R-tree join: descend both trees
  in lockstep, only into subtree pairs whose bounding rectangles
  intersect (the "overlay two maps" operation);
* :func:`nested_loop_join` — the baseline: one intersection query per
  outer rectangle;
* :func:`nearest_neighbors` — branch-and-bound best-first search over
  an R-tree;
* :func:`nearest_points` — nearest-neighbour search through any PAM's
  public interface by expanding square range queries.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Sequence

from repro.core.interfaces import PointAccessMethod
from repro.geometry.rect import Rect
from repro.sam.rtree import RTree, _Node

__all__ = [
    "rtree_join",
    "nested_loop_join",
    "nearest_neighbors",
    "nearest_points",
]


def rtree_join(left: RTree, right: RTree) -> list[tuple[object, object]]:
    """All pairs ``(rid_left, rid_right)`` of intersecting rectangles.

    The synchronised descent visits a pair of nodes only when their
    bounding rectangles intersect, which is what makes map overlay
    tractable compared to one query per object.
    """
    if left.dims != right.dims:
        raise ValueError("joined trees must share dimensionality")
    result: list[tuple[object, object]] = []

    def node_mbr(tree: RTree, pid: int) -> Rect:
        node: _Node = tree.store._objects[pid]
        return Rect.bounding(node.rects) if node.rects else None

    def join(left_pid: int, right_pid: int) -> None:
        left_node: _Node = left.store.read(left_pid)
        right_node: _Node = right.store.read(right_pid)
        if left_node.is_leaf and right_node.is_leaf:
            for l_rect, l_rid in zip(left_node.rects, left_node.children):
                for r_rect, r_rid in zip(right_node.rects, right_node.children):
                    if l_rect.intersects(r_rect):
                        result.append((l_rid, r_rid))
            return
        if left_node.is_leaf:
            for r_rect, r_pid in zip(right_node.rects, right_node.children):
                if any(l.intersects(r_rect) for l in left_node.rects):
                    join(left_pid, r_pid)
            return
        if right_node.is_leaf:
            for l_rect, l_pid in zip(left_node.rects, left_node.children):
                if any(r.intersects(l_rect) for r in right_node.rects):
                    join(l_pid, right_pid)
            return
        for l_rect, l_pid in zip(left_node.rects, left_node.children):
            for r_rect, r_pid in zip(right_node.rects, right_node.children):
                if l_rect.intersects(r_rect):
                    join(l_pid, r_pid)

    left.store.begin_operation()
    if node_mbr(left, left._root_pid) is not None and node_mbr(
        right, right._root_pid
    ) is not None:
        join(left._root_pid, right._root_pid)
    return result


def nested_loop_join(
    outer_rects: Sequence[tuple[Rect, object]], inner
) -> list[tuple[object, object]]:
    """The baseline join: one intersection query per outer rectangle."""
    result: list[tuple[object, object]] = []
    for rect, rid in outer_rects:
        for other in inner.intersection(rect):
            result.append((rid, other))
    return result


def _point_rect_distance(point: Sequence[float], rect: Rect) -> float:
    total = 0.0
    for c, lo, hi in zip(point, rect.lo, rect.hi):
        if c < lo:
            total += (lo - c) ** 2
        elif c > hi:
            total += (c - hi) ** 2
    return math.sqrt(total)


def nearest_neighbors(
    tree: RTree, point: Sequence[float], k: int = 1
) -> list[tuple[float, object]]:
    """The ``k`` stored rectangles closest to ``point`` (best-first search).

    Returns ``(distance, rid)`` pairs in increasing distance; distance 0
    means the point lies inside the rectangle.
    """
    if k < 1:
        raise ValueError("k must be positive")
    point = tuple(float(c) for c in point)
    tree.store.begin_operation()
    counter = itertools.count()
    heap: list[tuple[float, int, bool, object]] = [
        (0.0, next(counter), False, tree._root_pid)
    ]
    result: list[tuple[float, object]] = []
    while heap and len(result) < k:
        distance, _, is_entry, payload = heapq.heappop(heap)
        if is_entry:
            result.append((distance, payload))
            continue
        node: _Node = tree.store.read(payload)
        for rect, child in zip(node.rects, node.children):
            child_distance = _point_rect_distance(point, rect)
            heapq.heappush(
                heap, (child_distance, next(counter), node.is_leaf, child)
            )
    return result


def nearest_points(
    pam: PointAccessMethod, point: Sequence[float], k: int = 1
) -> list[tuple[float, tuple[float, ...], object]]:
    """The ``k`` stored points closest to ``point``, via any PAM.

    Runs expanding square range queries through the public interface
    (so page accesses are charged like any query) until the ``k``-th
    candidate provably beats everything outside the searched square.
    Returns ``(distance, point, rid)`` triples in increasing distance.
    """
    if k < 1:
        raise ValueError("k must be positive")
    if len(pam) == 0:
        return []
    point = tuple(float(c) for c in point)
    radius = 0.02
    while True:
        lo = tuple(max(0.0, c - radius) for c in point)
        hi = tuple(min(1.0, c + radius) for c in point)
        hits = pam.range_query(Rect(lo, hi))
        ranked = sorted(
            (math.dist(point, p), p, rid) for p, rid in hits
        )
        if len(ranked) >= k and ranked[k - 1][0] <= radius:
            return ranked[:k]
        if radius >= math.sqrt(pam.dims):  # the square covers the cube
            return ranked[:k]
        radius *= 2.0
