"""Traced experiment runs: the §3/§7 driver plus observability.

These helpers wrap :mod:`repro.core.comparison`'s build/query functions
with a :class:`~repro.obs.tracer.Tracer` and wall-clock timers, and
assemble the result into a :class:`~repro.obs.export.RunReport`.  The
tracer only *observes* the page stores, so the returned
:class:`~repro.core.comparison.MethodResult` objects — and every
access count inside the report — are identical to an untraced run with
the same data and seed.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.comparison import (
    MethodResult,
    _explain_dir,
    _trace_path,
    build_pam,
    build_sam,
    run_pam_queries,
    run_sam_queries,
)
from repro.core.interfaces import PointAccessMethod, SpatialAccessMethod
from repro.core.stats import AccessStats
from repro.geometry.rect import Rect
from repro.obs.export import RunReport, build_run_report
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

__all__ = ["record_to_ledger", "traced_pam_run", "traced_sam_run"]


def _traced_run(
    kind: str,
    factories: dict,
    data,
    build,
    run_queries,
    *,
    seed: int,
    label: str,
    page_size: int,
    record_events: bool,
    sink,
    meta: dict | None,
    vector: bool | None,
    ledger=None,
    explain: bool | str | None = None,
) -> tuple[dict[str, MethodResult], RunReport]:
    tracer = Tracer(record_events=record_events, sink=sink)
    registry = MetricsRegistry()
    explain_to = _explain_dir(explain)
    results: dict[str, MethodResult] = {}
    totals: dict[str, AccessStats] = {}
    storage: dict[str, dict] = {}
    for name, factory in factories.items():
        tracer.set_context(structure=name, op="insert")
        with registry.timer(f"{name}/build"):
            method = build(
                factory, data, page_size=page_size, tracer=tracer, vector=vector
            )
        recorder = None
        if explain_to is not None:
            from repro.obs.explain import ExplainRecorder

            recorder = ExplainRecorder(name)
        with registry.timer(f"{name}/queries"):
            result = run_queries(method, seed=seed, tracer=tracer, explain=recorder)
        if recorder is not None:
            recorder.save(_trace_path(explain_to, kind, name))
        result.name = name
        result.snapshot = method.snapshot()
        results[name] = result
        totals[name] = method.store.stats.snapshot()
        io_stats = getattr(method.store, "io_stats", None)
        if io_stats is not None:  # durable backend: physical-IO counters
            storage[name] = io_stats()
    report = build_run_report(
        label=label,
        kind=kind,
        scale=len(data),
        page_size=page_size,
        seed=seed,
        results=results,
        totals=totals,
        spans=tracer.finish(),
        timers={name: timer.seconds for name, timer in registry.timers().items()},
        meta=meta,
        storage=storage or None,
    )
    record_to_ledger(report, ledger=ledger)
    return results, report


def record_to_ledger(report: RunReport, *, ledger=None, workers: int = 1) -> None:
    """Append ``report`` to the performance ledger, if one is active.

    ``ledger`` follows :func:`repro.obs.ledger.resolve_ledger` semantics:
    ``None`` defers to ``REPRO_LEDGER`` (so recording stays off unless
    the environment opts in), ``True``/a path/a ``Ledger`` enable it,
    ``False`` disables it outright.
    """
    from repro.obs.ledger import entry_from_run_report, resolve_ledger

    target = resolve_ledger(ledger)
    if target is None:
        return
    target.record(entry_from_run_report(report, workers=workers))


def traced_pam_run(
    factories: dict[str, Callable[..., PointAccessMethod]],
    points: Sequence[tuple[float, ...]],
    *,
    seed: int = 101,
    label: str = "PAM run",
    page_size: int = 512,
    record_events: bool = False,
    sink=None,
    meta: dict | None = None,
    vector: bool | None = None,
    ledger=None,
    explain: bool | str | None = None,
) -> tuple[dict[str, MethodResult], RunReport]:
    """Build every PAM on ``points``, run the §3 query files, report.

    Returns ``(results, report)`` where ``results`` is exactly what
    :func:`repro.core.comparison.run_pam_experiment` would produce and
    ``report`` adds per-operation histograms, timings and totals.
    ``vector`` forces the stores' columnar caches on or off (``None``
    defers to ``REPRO_VECTOR``); every reported access count is
    identical either way.  ``ledger`` optionally appends the run to the
    performance ledger (see :func:`record_to_ledger`).  ``explain``
    follows :func:`repro.core.comparison._explain_dir` semantics
    (``None`` defers to ``REPRO_EXPLAIN``): when active, one
    :mod:`repro.obs.explain` trace per structure lands in the trace
    directory, without changing any reported number.
    """
    return _traced_run(
        "pam",
        factories,
        points,
        build_pam,
        run_pam_queries,
        seed=seed,
        label=label,
        page_size=page_size,
        record_events=record_events,
        sink=sink,
        meta=meta,
        vector=vector,
        ledger=ledger,
        explain=explain,
    )


def traced_sam_run(
    factories: dict[str, Callable[..., SpatialAccessMethod]],
    rects: Sequence[Rect],
    *,
    seed: int = 107,
    label: str = "SAM run",
    page_size: int = 512,
    record_events: bool = False,
    sink=None,
    meta: dict | None = None,
    vector: bool | None = None,
    ledger=None,
    explain: bool | str | None = None,
) -> tuple[dict[str, MethodResult], RunReport]:
    """Build every SAM on ``rects``, run the §7 query workload, report."""
    return _traced_run(
        "sam",
        factories,
        rects,
        build_sam,
        run_sam_queries,
        seed=seed,
        label=label,
        page_size=page_size,
        record_events=record_events,
        sink=sink,
        meta=meta,
        vector=vector,
        ledger=ledger,
        explain=explain,
    )
