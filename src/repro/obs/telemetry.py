"""Live storage telemetry: IO latency histograms, a flight recorder,
a slow-operation log, and Prometheus exporters.

Everything before this module measured *logical* cost — charged page
accesses, deterministic under a fixed seed.  The durable backend
(:mod:`repro.storage.disk`) added *physical* cost: preads, pwrites and
above all fsyncs, whose latency distribution (not its sum) decides
whether a build takes 1.4 s or 42 s.  This module is the physical-cost
observatory:

* :class:`Telemetry` — a process-wide sink of latency
  :class:`~repro.obs.metrics.Histogram`\\ s (buckets tuned for
  microsecond-to-second timings), monotone counters and *callback
  gauges* (pool residency, dirty/pinned counts, WAL bytes) that cost
  nothing until read.  Enabled by ``REPRO_TELEMETRY=1``; when disabled,
  no instrumentation is installed anywhere and the hot paths are
  untouched.  Telemetry is strictly additive: charged
  :class:`~repro.core.stats.AccessStats`, query results, explain traces
  and structure snapshots are bit-identical with it on or off.
* :class:`FlightRecorder` — a daemon thread sampling every registered
  metric at a fixed interval into a schema-versioned JSONL time series
  (:data:`TIMELINE_SCHEMA`), so a long build or a serving process can
  be watched while it runs and post-mortemed after.  Per-worker
  timelines merge deterministically (:func:`merge_timelines`).
* **Slow-operation log** — any commit / checkpoint / query whose wall
  clock crosses ``REPRO_SLOW_OP_MS`` is recorded with its operation
  span, the page ids it touched and the physical-IO breakdown that
  explains the time (:data:`SLOW_OP_SCHEMA`).
* **Exporters** — Prometheus text format (:func:`to_prometheus`), both
  as a one-shot file export and as a live stdlib ``/metrics`` endpoint
  (:class:`MetricsServer`), plus the ``python -m repro.obs.telemetry``
  CLI (``render`` a timeline as per-metric sparklines, ``validate``
  against the schemas, ``diff`` two timelines).
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import math
import os
import sys
import threading
import time
import weakref
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.metrics import (
    LATENCY_BUCKETS_SECONDS,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "SLOW_OP_SCHEMA",
    "TIMELINE_SCHEMA",
    "FlightRecorder",
    "MetricsServer",
    "Telemetry",
    "active_telemetry",
    "merge_timelines",
    "prometheus_name",
    "read_timeline",
    "set_telemetry",
    "summarise_histogram",
    "telemetry_enabled",
    "to_prometheus",
    "validate_io_stats",
    "validate_timeline",
    "write_prometheus",
    "main",
]

#: Schema of one flight-recorder timeline (JSONL: header, then samples).
TIMELINE_SCHEMA = "repro.obs/telemetry/v1"

#: Schema of a slow-operation log (JSONL: header, then one line per op).
SLOW_OP_SCHEMA = "repro.obs/slow-op/v1"

TELEMETRY_ENV = "REPRO_TELEMETRY"
SLOW_OP_ENV = "REPRO_SLOW_OP_MS"
TIMELINE_DIR_ENV = "REPRO_TELEMETRY_DIR"

_ON_VALUES = {"1", "true", "on", "yes"}


def telemetry_enabled() -> bool:
    """Whether ``REPRO_TELEMETRY`` turns the telemetry layer on."""
    return os.environ.get(TELEMETRY_ENV, "").strip().lower() in _ON_VALUES


def slow_op_threshold_seconds() -> float | None:
    """The ``REPRO_SLOW_OP_MS`` threshold in seconds (``None`` = off)."""
    raw = os.environ.get(SLOW_OP_ENV, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value / 1000.0 if value >= 0 else None


def summarise_histogram(hist: Histogram) -> dict:
    """An exact summary computed on a *copy* of the samples.

    The flight recorder samples from its own thread while the workload
    thread keeps observing; :meth:`Histogram.percentile` sorts the
    shared sample list in place, which must never race with an append.
    Copying first (``list`` of a list is safe under the GIL) makes the
    summary a consistent point-in-time snapshot and leaves the
    histogram's lazy-sort state alone.
    """
    samples = sorted(list(hist._samples))
    n = len(samples)
    if not n:
        return {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
            "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0,
        }
    total = sum(samples)

    def rank(q: float) -> float:
        return samples[max(1, math.ceil(q / 100.0 * n)) - 1]

    return {
        "count": n,
        "sum": total,
        "min": samples[0],
        "max": samples[-1],
        "mean": total / n,
        "p50": rank(50),
        "p90": rank(90),
        "p99": rank(99),
    }


class Telemetry:
    """The live metrics substrate: histograms, counters, gauges, slow ops.

    One instance is typically process-wide (:func:`active_telemetry`);
    every durable store registers itself so the pool/WAL gauges
    aggregate across all live stores, and every instrumented IO call
    lands in the shared latency histograms.  All observation methods
    are cheap enough for hot paths *when reached*, but the design rule
    is stronger: callers hold ``telemetry is None`` guards, so a
    disabled run never even branches into this module.
    """

    def __init__(
        self,
        *,
        registry: MetricsRegistry | None = None,
        slow_op_ms: float | None = None,
        label: str = "",
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.label = label
        if slow_op_ms is not None:
            self.slow_op_seconds: float | None = slow_op_ms / 1000.0
        else:
            self.slow_op_seconds = slow_op_threshold_seconds()
        self.slow_ops: list[dict] = []
        self.started = time.perf_counter()
        self._stores: "weakref.WeakSet" = weakref.WeakSet()
        self._store_gauges_registered = False
        self._lock = threading.Lock()

    # -- observation --------------------------------------------------------

    def histogram(
        self, name: str, buckets: tuple[float, ...] = LATENCY_BUCKETS_SECONDS
    ) -> Histogram:
        return self.registry.histogram(name, buckets)

    def counter(self, name: str):
        return self.registry.counter(name)

    def gauge(self, name: str, fn=None):
        return self.registry.gauge(name, fn)

    def observe(self, name: str, seconds: float) -> None:
        """Record one latency observation into ``name``'s histogram."""
        self.registry.histogram(name, LATENCY_BUCKETS_SECONDS).observe(seconds)

    def observe_io(self, op: str, seconds: float, nbytes: int) -> None:
        """The :class:`repro.storage.io.InstrumentedIO` sink."""
        self.registry.histogram(
            f"storage.io.{op}_seconds", LATENCY_BUCKETS_SECONDS
        ).observe(seconds)
        if nbytes:
            self.registry.counter(f"storage.io.{op}_bytes").inc(nbytes)

    def io_counts(self) -> dict[str, tuple[int, float]]:
        """Per-op ``(count, total seconds)`` of the IO-latency
        histograms — cheap to snapshot before and after an operation,
        so the delta is that operation's physical-IO breakdown."""
        out: dict[str, tuple[int, float]] = {}
        prefix, suffix = "storage.io.", "_seconds"
        for name, hist in self.registry.histograms().items():
            if name.startswith(prefix) and name.endswith(suffix):
                samples = list(hist._samples)
                out[name[len(prefix):-len(suffix)]] = (
                    len(samples),
                    sum(samples),
                )
        return out

    class _Span:
        __slots__ = ("telemetry", "name", "seconds", "_start")

        def __init__(self, telemetry: "Telemetry", name: str):
            self.telemetry = telemetry
            self.name = name
            self.seconds = 0.0

        def __enter__(self) -> "Telemetry._Span":
            self._start = time.perf_counter()
            return self

        def __exit__(self, *exc) -> None:
            self.seconds = time.perf_counter() - self._start
            self.telemetry.observe(self.name, self.seconds)

    def time(self, name: str) -> "Telemetry._Span":
        """``with telemetry.time("storage.commit_seconds") as span: ...``"""
        return self._Span(self, name)

    # -- the slow-operation log ---------------------------------------------

    def maybe_slow_op(
        self,
        op: str,
        seconds: float,
        *,
        pages: Sequence[int] | None = None,
        io: Mapping | None = None,
        detail: Mapping | None = None,
    ) -> dict | None:
        """Record ``op`` if it crossed the slow-operation threshold.

        The record carries the operation span (start offset relative to
        the telemetry epoch plus duration), the page ids the operation
        touched, and the physical-IO breakdown handed in by the caller
        — everything needed to answer "why was *this* commit slow"
        without re-running anything.
        """
        threshold = self.slow_op_seconds
        if threshold is None or seconds < threshold:
            return None
        now = time.perf_counter() - self.started
        record: dict = {
            "op": op,
            "seconds": seconds,
            "threshold_seconds": threshold,
            "started_seconds": max(0.0, now - seconds),
            "ended_seconds": now,
        }
        if pages is not None:
            pages = sorted(pages)
            record["page_count"] = len(pages)
            record["pages"] = pages[:64]
        if io:
            record["io"] = dict(io)
        if detail:
            record["detail"] = dict(detail)
        with self._lock:
            record["seq"] = len(self.slow_ops)
            self.slow_ops.append(record)
        self.counter("telemetry.slow_ops").inc()
        return record

    def save_slow_ops(self, path: str | Path) -> Path:
        """Write the slow-operation log as schema-versioned JSONL."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [
            json.dumps(
                {
                    "schema": SLOW_OP_SCHEMA,
                    "kind": "header",
                    "label": self.label,
                    "threshold_seconds": self.slow_op_seconds,
                    "count": len(self.slow_ops),
                },
                separators=(",", ":"),
            )
        ]
        for record in self.slow_ops:
            lines.append(
                json.dumps({"kind": "slow_op", **record}, separators=(",", ":"))
            )
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path

    # -- store registration --------------------------------------------------

    def register_store(self, store) -> None:
        """Hook one durable store's pool/WAL state into the gauges.

        Gauges are registered once and *sum across every live
        registered store* (the multi-tenant service will run many);
        dead stores drop out via the weak set.  Reading a gauge walks
        the stores only at sampling/export time — zero hot-path cost.
        """
        self._stores.add(store)
        if self._store_gauges_registered:
            return
        self._store_gauges_registered = True

        def total(fn):
            return lambda: sum(fn(s) for s in list(self._stores))

        pool = lambda s: s.pool  # noqa: E731 - tiny local accessor
        self.gauge("storage.stores", lambda: len(list(self._stores)))
        self.gauge("storage.pool.resident", total(lambda s: len(pool(s).frames)))
        self.gauge("storage.pool.pages", total(lambda s: len(pool(s).pages)))
        self.gauge("storage.pool.dirty", total(lambda s: len(pool(s).dirty)))
        self.gauge("storage.pool.pinned", total(lambda s: len(s._pinned)))
        self.gauge(
            "storage.pool.wal_only",
            total(
                lambda s: sum(
                    1
                    for m in list(pool(s).pages.values())
                    if m.durable and not m.on_disk
                )
            ),
        )
        self.gauge("storage.pool.budget", total(lambda s: pool(s).budget))
        self.gauge(
            "storage.wal.bytes_since_checkpoint",
            total(lambda s: s._wal.size - 8),
        )

    # -- sampling and summaries ----------------------------------------------

    def sample(self) -> dict:
        """One flight-recorder sample of every registered metric."""
        registry = self.registry
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(registry.counters().items())
            },
            "gauges": {
                name: gauge.value
                for name, gauge in sorted(registry.gauges().items())
            },
            "histograms": {
                name: summarise_histogram(hist)
                for name, hist in sorted(registry.histograms().items())
            },
        }

    def latency_summaries(self) -> dict[str, dict]:
        """End-of-run summaries of every latency histogram, by name."""
        return {
            name: summarise_histogram(hist)
            for name, hist in sorted(self.registry.histograms().items())
        }


# -- the process-wide instance ----------------------------------------------

_EXPLICIT: Telemetry | None = None
_ENV_INSTANCE: Telemetry | None = None


def set_telemetry(telemetry: Telemetry | None) -> None:
    """Install (or clear) the process-wide telemetry explicitly.

    An explicit instance wins over the environment; ``None`` restores
    environment resolution.  Tests use this to instrument a single run
    without leaking state across the suite.
    """
    global _EXPLICIT
    _EXPLICIT = telemetry


def active_telemetry() -> Telemetry | None:
    """The process-wide telemetry, or ``None`` when disabled.

    Explicit (:func:`set_telemetry`) beats environment; with
    ``REPRO_TELEMETRY=1`` a shared instance is created on first use so
    every store, bench and query driver in the process reports into one
    registry — which is exactly what the flight recorder samples.
    """
    if _EXPLICIT is not None:
        return _EXPLICIT
    if not telemetry_enabled():
        return None
    global _ENV_INSTANCE
    if _ENV_INSTANCE is None:
        _ENV_INSTANCE = Telemetry()
    return _ENV_INSTANCE


# -- the flight recorder -----------------------------------------------------


class FlightRecorder:
    """Samples a :class:`Telemetry` into a JSONL time series.

    A daemon thread wakes every ``interval_seconds``, takes one
    consistent sample of all counters / gauges / histogram summaries
    and appends it as one JSON line.  :meth:`stop` writes a final
    sample, so even a run shorter than the interval records at least
    one data point.  The file starts with a header line carrying the
    schema, the sampling interval and the worker label — which is what
    makes per-worker timelines mergeable and validatable.
    """

    def __init__(
        self,
        telemetry: Telemetry,
        path: str | Path,
        *,
        interval_seconds: float = 0.25,
        label: str = "",
        worker: str | None = None,
    ):
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        self.telemetry = telemetry
        self.path = Path(path)
        self.interval_seconds = interval_seconds
        self.label = label
        self.worker = worker
        self.samples_written = 0
        self._fh = None
        self._seq = 0
        self._started = 0.0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "FlightRecorder":
        if self._thread is not None:
            raise ValueError("flight recorder already started")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w", encoding="utf-8")
        self._started = time.perf_counter()
        header = {
            "schema": TIMELINE_SCHEMA,
            "kind": "header",
            "version": 1,
            "interval_seconds": self.interval_seconds,
            "label": self.label,
        }
        if self.worker is not None:
            header["worker"] = self.worker
        self._write(header)
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-flight-recorder", daemon=True
        )
        self._thread.start()
        return self

    def _write(self, doc: dict) -> None:
        self._fh.write(json.dumps(doc, separators=(",", ":")) + "\n")
        self._fh.flush()

    def _write_sample(self, final: bool = False) -> None:
        sample = {
            "kind": "sample",
            "seq": self._seq,
            "elapsed_seconds": time.perf_counter() - self._started,
            **self.telemetry.sample(),
        }
        if final:
            sample["final"] = True
        self._write(sample)
        self._seq += 1
        self.samples_written += 1

    def _run(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            self._write_sample()

    def stop(self) -> Path:
        """Stop sampling, write the final sample, close the file."""
        if self._thread is None:
            return self.path
        self._stop.set()
        self._thread.join()
        self._thread = None
        self._write_sample(final=True)
        self._fh.close()
        self._fh = None
        return self.path

    def __enter__(self) -> "FlightRecorder":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


# -- timeline files ----------------------------------------------------------


def read_timeline(path: str | Path) -> tuple[dict, list[dict]]:
    """Parse one timeline file into ``(header, samples)``."""
    header: dict = {}
    samples: list[dict] = []
    with Path(path).open(encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            if not raw.strip():
                continue
            doc = json.loads(raw)
            if lineno == 1:
                header = doc
            elif doc.get("kind") == "sample":
                samples.append(doc)
    return header, samples


_SUMMARY_KEYS = ("count", "sum", "min", "max", "mean", "p50", "p90", "p99")


def validate_timeline(path: str | Path) -> list[str]:
    """Schema-check one timeline file; returns problems ([] when valid)."""
    problems: list[str] = []
    try:
        header, samples = read_timeline(path)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable: {exc}"]
    if header.get("schema") != TIMELINE_SCHEMA:
        problems.append(
            f"header schema is {header.get('schema')!r}, "
            f"expected {TIMELINE_SCHEMA!r}"
        )
        return problems
    if header.get("kind") != "header":
        problems.append("first line is not the header")
    if not isinstance(header.get("interval_seconds"), (int, float)):
        problems.append("header lacks a numeric interval_seconds")
    if not samples:
        problems.append("timeline has no samples")
    last_seq = -1
    for sample in samples:
        where = f"sample {sample.get('seq')}"
        seq = sample.get("seq")
        if not isinstance(seq, int):
            problems.append(f"{where}: non-integer seq")
            continue
        if "worker" not in sample and seq <= last_seq:
            problems.append(f"{where}: seq not increasing")
        last_seq = seq
        if not isinstance(sample.get("elapsed_seconds"), (int, float)):
            problems.append(f"{where}: missing elapsed_seconds")
        for section in ("counters", "gauges", "histograms"):
            block = sample.get(section)
            if not isinstance(block, Mapping):
                problems.append(f"{where}: missing {section} mapping")
                continue
            if section == "histograms":
                for name, summary in block.items():
                    if not isinstance(summary, Mapping) or any(
                        not isinstance(summary.get(k), (int, float))
                        for k in _SUMMARY_KEYS
                    ):
                        problems.append(
                            f"{where}: histogram {name!r} lacks "
                            f"numeric {_SUMMARY_KEYS}"
                        )
            else:
                for name, value in block.items():
                    if not isinstance(value, (int, float)):
                        problems.append(
                            f"{where}: {section[:-1]} {name!r} is not numeric"
                        )
    return problems


def validate_slow_op_log(path: str | Path) -> list[str]:
    """Schema-check one slow-operation log file."""
    problems: list[str] = []
    try:
        lines = [
            json.loads(raw)
            for raw in Path(path).read_text(encoding="utf-8").splitlines()
            if raw.strip()
        ]
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable: {exc}"]
    if not lines or lines[0].get("schema") != SLOW_OP_SCHEMA:
        return [f"first line is not a {SLOW_OP_SCHEMA} header"]
    header, records = lines[0], lines[1:]
    if header.get("count") != len(records):
        problems.append(
            f"header count {header.get('count')} != {len(records)} records"
        )
    for record in records:
        where = f"slow op {record.get('seq')}"
        if record.get("kind") != "slow_op":
            problems.append(f"{where}: kind is not 'slow_op'")
        for key in ("op", "seconds", "threshold_seconds", "started_seconds",
                    "ended_seconds", "seq"):
            if key not in record:
                problems.append(f"{where}: missing {key!r}")
        if isinstance(record.get("seconds"), (int, float)) and isinstance(
            record.get("threshold_seconds"), (int, float)
        ):
            if record["seconds"] < record["threshold_seconds"]:
                problems.append(f"{where}: below its own threshold")
    return problems


def merge_timelines(
    paths: Sequence[str | Path], out: str | Path | None = None
) -> tuple[dict, list[dict]]:
    """Merge per-worker timelines into one, deterministically.

    Sources are consumed in the order given (callers sort by filename),
    every sample is tagged with its source's worker label (falling back
    to the file stem) and re-numbered with a global ``seq`` while its
    original position is kept as ``worker_seq``.  The merge is a pure
    function of the input files and their order — two merges of the
    same recorded set are byte-identical, which is what lets CI diff a
    parallel run's merged timeline against a reference.
    """
    sources: list[str] = []
    merged: list[dict] = []
    interval = None
    for path in paths:
        header, samples = read_timeline(path)
        if header.get("schema") != TIMELINE_SCHEMA:
            raise ValueError(f"{path}: not a {TIMELINE_SCHEMA} timeline")
        worker = str(header.get("worker") or header.get("label") or Path(path).stem)
        sources.append(worker)
        if interval is None:
            interval = header.get("interval_seconds")
        for sample in samples:
            entry = dict(sample)
            entry["worker"] = worker
            entry["worker_seq"] = entry.pop("seq")
            merged.append(entry)
    for seq, entry in enumerate(merged):
        entry["seq"] = seq
    header = {
        "schema": TIMELINE_SCHEMA,
        "kind": "header",
        "version": 1,
        "interval_seconds": interval if interval is not None else 0.0,
        "label": "merged",
        "merged": True,
        "sources": sources,
    }
    if out is not None:
        out = Path(out)
        out.parent.mkdir(parents=True, exist_ok=True)
        lines = [json.dumps(header, separators=(",", ":"))]
        lines += [json.dumps(e, separators=(",", ":")) for e in merged]
        out.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return header, merged


# -- io_stats schema ---------------------------------------------------------

IO_STATS_KEYS = ("backend", "pool", "wal", "pagefile", "commits", "checkpoints")
IO_STATS_POOL_KEYS = (
    "budget", "resident", "pages", "hits", "misses",
    "evictions", "peek_loads", "overflows", "silent_dirty", "hit_rate",
)
IO_STATS_WAL_KEYS = ("records", "commits", "bytes", "size")
IO_STATS_PAGEFILE_KEYS = ("reads", "writes", "bytes_read", "bytes_written")


def validate_io_stats(stats: Mapping) -> list[str]:
    """Shape-check a ``DiskPageStore.io_stats()`` document.

    Pins the keys the run-report ``storage`` block and the ledger
    folding rely on; the ``latency`` / ``write_amplification`` /
    ``slow_ops`` fields are additive (present only under telemetry) and
    validated when present.
    """
    problems: list[str] = []
    if not isinstance(stats, Mapping):
        return ["io_stats is not a mapping"]
    for key in IO_STATS_KEYS:
        if key not in stats:
            problems.append(f"missing key {key!r}")
    if problems:
        return problems
    if stats["backend"] != "disk":
        problems.append(f"backend is {stats['backend']!r}, expected 'disk'")
    for block, keys in (
        ("pool", IO_STATS_POOL_KEYS),
        ("wal", IO_STATS_WAL_KEYS),
        ("pagefile", IO_STATS_PAGEFILE_KEYS),
    ):
        value = stats.get(block)
        if not isinstance(value, Mapping):
            problems.append(f"{block} is not a mapping")
            continue
        for key in keys:
            if not isinstance(value.get(key), (int, float)):
                problems.append(f"{block}.{key} missing or non-numeric")
    for key in ("commits", "checkpoints"):
        if not isinstance(stats.get(key), int):
            problems.append(f"{key} is not an integer")
    latency = stats.get("latency")
    if latency is not None:
        if not isinstance(latency, Mapping):
            problems.append("latency is not a mapping")
        else:
            for name, summary in latency.items():
                if not isinstance(summary, Mapping) or any(
                    not isinstance(summary.get(k), (int, float))
                    for k in _SUMMARY_KEYS
                ):
                    problems.append(f"latency[{name!r}] is not a summary")
    if "write_amplification" in stats and not isinstance(
        stats["write_amplification"], (int, float)
    ):
        problems.append("write_amplification is not numeric")
    if "slow_ops" in stats and not isinstance(stats["slow_ops"], int):
        problems.append("slow_ops is not an integer")
    return problems


# -- Prometheus export -------------------------------------------------------


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """A metric name in Prometheus form: ``storage.io.fsync_seconds``
    becomes ``repro_storage_io_fsync_seconds``."""
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name.lower()
    )
    while "__" in cleaned:
        cleaned = cleaned.replace("__", "_")
    return f"{prefix}_{cleaned.strip('_')}"


def _fmt(value: float) -> str:
    if value != value or value in (math.inf, -math.inf):  # NaN / Inf guards
        return "0"
    return f"{value:.10g}"


def to_prometheus(source: Telemetry | MetricsRegistry) -> str:
    """Render every registered metric in Prometheus text format (0.0.4).

    Counters become ``<name>_total``; histograms emit the standard
    cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``;
    gauges are read through their callbacks at export time; timers
    export their accumulated seconds as a counter.  Names follow the
    Prometheus conventions: ``repro_`` namespace, base units (seconds,
    bytes), ``_total`` on monotone series.
    """
    registry = source.registry if isinstance(source, Telemetry) else source
    lines: list[str] = []

    for name, counter in sorted(registry.counters().items()):
        metric = prometheus_name(name)
        if not metric.endswith("_total"):
            metric += "_total"
        lines.append(f"# HELP {metric} Monotone counter {name}.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {counter.value}")

    for name, gauge in sorted(registry.gauges().items()):
        metric = prometheus_name(name)
        lines.append(f"# HELP {metric} Gauge {name}.")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(gauge.value)}")

    for name, hist in sorted(registry.histograms().items()):
        metric = prometheus_name(name)
        summary = summarise_histogram(hist)
        lines.append(f"# HELP {metric} Histogram {name}.")
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        bucket_counts = list(hist.bucket_counts)
        for bound, count in zip(hist.buckets, bucket_counts):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_fmt(float(bound))}"}} {cumulative}'
            )
        cumulative += bucket_counts[-1]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {_fmt(summary['sum'])}")
        lines.append(f"{metric}_count {summary['count']}")

    for name, timer in sorted(registry.timers().items()):
        metric = prometheus_name(name)
        if not metric.endswith("_seconds"):
            metric += "_seconds"
        metric += "_total"
        lines.append(f"# HELP {metric} Accumulated wall clock of {name}.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(timer.seconds)}")

    return "\n".join(lines) + "\n"


def write_prometheus(source: Telemetry | MetricsRegistry, path: str | Path) -> Path:
    """One-shot Prometheus text export to a file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_prometheus(source), encoding="utf-8")
    return path


class MetricsServer:
    """A live ``/metrics`` endpoint over the stdlib ``http.server``.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port` / :attr:`url`).  The handler renders
    :func:`to_prometheus` per scrape, so gauges and histograms are
    always current; anything but ``GET /metrics`` is a 404.  The server
    runs on a daemon thread — :meth:`stop` (or the context manager)
    shuts it down cleanly.
    """

    def __init__(
        self,
        telemetry: Telemetry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.telemetry = telemetry
        self.host = host
        self._requested_port = port
        self._server = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        if self._server is None:
            raise ValueError("server is not running")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        telemetry = self.telemetry

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                if self.path.rstrip("/") not in ("", "/metrics".rstrip("/")):
                    self.send_error(404, "only /metrics is served")
                    return
                body = to_prometheus(telemetry).encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # silence per-request stderr spam
                pass

        self._server = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


# -- CLI ---------------------------------------------------------------------

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def _sparkline(values: Sequence[float], width: int = 48) -> str:
    if not values:
        return ""
    if len(values) > width:  # downsample by striding, keeping the last point
        step = len(values) / width
        values = [values[min(len(values) - 1, int(i * step))] for i in range(width)]
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK_CHARS[0] * len(values)
    span = hi - lo
    return "".join(
        _SPARK_CHARS[min(7, int((v - lo) / span * 8))] for v in values
    )


def _metric_series(samples: Sequence[Mapping]) -> dict[str, list[float]]:
    """Flatten samples to per-metric value series, in first-seen order.

    Counters and gauges contribute their value; histograms contribute
    ``<name>.count``, ``<name>.p50`` and ``<name>.p99`` series, which is
    what a latency investigation actually plots.
    """
    series: dict[str, list[float]] = {}

    def push(name: str, value: float, index: int) -> None:
        values = series.setdefault(name, [])
        while len(values) < index:  # metric appeared mid-flight: pad
            values.append(0.0)
        values.append(float(value))

    for index, sample in enumerate(samples):
        for name, value in sample.get("counters", {}).items():
            push(name, value, index)
        for name, value in sample.get("gauges", {}).items():
            push(name, value, index)
        for name, summary in sample.get("histograms", {}).items():
            push(f"{name}.count", summary.get("count", 0), index)
            push(f"{name}.p50", summary.get("p50", 0.0), index)
            push(f"{name}.p99", summary.get("p99", 0.0), index)
    n = len(samples)
    for values in series.values():
        while len(values) < n:
            values.append(values[-1] if values else 0.0)
    return series


def render_timeline(
    path: str | Path, *, metric_glob: str = "*", width: int = 48
) -> str:
    """Per-metric sparkline + summary table of one timeline file."""
    header, samples = read_timeline(path)
    duration = samples[-1].get("elapsed_seconds", 0.0) if samples else 0.0
    lines = [
        f"timeline: {header.get('label') or Path(path).name} "
        f"({len(samples)} samples, {duration:.2f}s, "
        f"interval {header.get('interval_seconds', 0)}s"
        + (f", merged from {len(header.get('sources', []))} workers" if header.get("merged") else "")
        + ")"
    ]
    series = _metric_series(samples)
    names = [n for n in series if fnmatch.fnmatch(n, metric_glob)]
    if not names:
        lines.append(f"no metrics match {metric_glob!r}")
        return "\n".join(lines)
    name_width = max(len(n) for n in names)
    lines.append(
        f"{'metric':{name_width}s}  {'first':>12s}{'last':>12s}{'max':>12s}  trend"
    )
    for name in names:
        values = series[name]
        lines.append(
            f"{name:{name_width}s}  {values[0]:>12.6g}{values[-1]:>12.6g}"
            f"{max(values):>12.6g}  {_sparkline(values, width)}"
        )
    return "\n".join(lines)


def diff_timelines(old: str | Path, new: str | Path) -> list[dict]:
    """Final-sample metric deltas between two timelines."""
    rows: list[dict] = []
    old_series = _metric_series(read_timeline(old)[1])
    new_series = _metric_series(read_timeline(new)[1])
    for name in sorted(set(old_series) & set(new_series)):
        a = old_series[name][-1] if old_series[name] else 0.0
        b = new_series[name][-1] if new_series[name] else 0.0
        delta = 100.0 * (b - a) / a if a else 0.0
        rows.append({"metric": name, "old": a, "new": b, "delta_pct": delta})
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.telemetry",
        description="Render, validate or diff telemetry timelines.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("render", help="sparkline/summary table of a timeline")
    p.add_argument("timeline", metavar="TIMELINE.jsonl")
    p.add_argument("--metric", default="*", help="glob over metric names")
    p.add_argument("--width", type=int, default=48, help="sparkline width")

    p = sub.add_parser(
        "validate", help="schema-check timelines and slow-op logs"
    )
    p.add_argument("files", nargs="+", metavar="FILE.jsonl")

    p = sub.add_parser("diff", help="final-sample metric deltas, new vs old")
    p.add_argument("old")
    p.add_argument("new")

    args = parser.parse_args(argv)

    if args.command == "render":
        try:
            print(render_timeline(args.timeline, metric_glob=args.metric,
                                  width=args.width))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0

    if args.command == "validate":
        status = 0
        for path in args.files:
            try:
                first = Path(path).read_text(encoding="utf-8").split("\n", 1)[0]
                schema = json.loads(first).get("schema") if first.strip() else None
            except (OSError, json.JSONDecodeError) as exc:
                print(f"{path}: UNREADABLE ({exc})")
                status = 1
                continue
            if schema == SLOW_OP_SCHEMA:
                problems = validate_slow_op_log(path)
            else:
                problems = validate_timeline(path)
            if problems:
                status = 1
                print(f"{path}: INVALID")
                for problem in problems:
                    print(f"  - {problem}")
            else:
                print(f"{path}: OK")
        return status

    # diff
    try:
        rows = diff_timelines(args.old, args.new)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"{'metric':44s}{'old':>12s}{'new':>12s}{'delta':>9s}")
    for row in rows:
        print(
            f"{row['metric']:44s}{row['old']:>12.6g}{row['new']:>12.6g}"
            f"{row['delta_pct']:>+8.1f}%"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
