"""Deterministic cost attribution: where do accesses and time go?

The tracer already records one :class:`~repro.obs.tracer.Span` per
bracketed operation, and the drivers time each structure with two
timers (``<name>/build``, ``<name>/queries``).  This module rolls those
two sources into a :class:`CostAttribution` — per-structure, per-phase,
per-operation rows of disk accesses (charged *and* free) and wall time
— with two exactness guarantees:

* **accesses**: the attribution's charged counters are plain integer
  sums of the spans, so they equal the tracer's
  :class:`~repro.core.stats.AccessStats` totals bit-identically, at any
  worker count (the parallel runner's merge reproduces the serial span
  stream exactly);
* **wall time**: each timer is converted once to integer nanoseconds
  and apportioned over its rows by the largest-remainder method
  (weighted by page touches), so the rows sum back to
  ``round(seconds * 1e9)`` exactly — no float drip.  A timer with no
  matching spans keeps its time on a synthetic ``(untraced)`` row
  rather than dropping it.

The **heatmap** view splits every access method's page touches into
counted vs. uncounted (pinned roots, buffered re-reads, search-path
credits, write dedup) — the paper's charging rules made visible.

:func:`repro.obs.export.profile_to_speedscope` and
``profile_to_collapsed`` turn an attribution's ``stacks()`` into
flamegraph files::

    python -m repro.obs.profile results/report_pam.json \\
        --speedscope results/pam.speedscope.json --unit accesses
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.core.stats import AccessStats
from repro.obs.tracer import Span, phase_of

__all__ = [
    "OpCost",
    "CostAttribution",
    "apportion",
    "main",
]

_STATS_KEYS = ("data_reads", "data_writes", "dir_reads", "dir_writes")


def apportion(total: int, weights: Sequence[int]) -> list[int]:
    """Split integer ``total`` proportionally to ``weights``, exactly.

    Largest-remainder (Hamilton) apportionment: every share is the
    floor of its proportional entitlement, and the leftover units go to
    the largest fractional remainders (ties to the earlier index).  The
    shares always sum to ``total`` — the property float proportional
    splits cannot promise.  All-zero weights degrade to an even split.
    """
    if not weights:
        return []
    if total <= 0:
        return [0] * len(weights)
    wsum = sum(weights)
    if wsum <= 0:
        weights = [1] * len(weights)
        wsum = len(weights)
    shares = [total * w // wsum for w in weights]
    leftover = total - sum(shares)
    order = sorted(
        range(len(weights)), key=lambda i: (-(total * weights[i] % wsum), i)
    )
    for i in order[:leftover]:
        shares[i] += 1
    return shares


@dataclass
class OpCost:
    """Attributed cost of one ``(structure, op)`` group."""

    structure: str
    op: str
    phase: str
    operations: int = 0
    data_reads: int = 0
    data_writes: int = 0
    dir_reads: int = 0
    dir_writes: int = 0
    free: int = 0
    wall_ns: int = 0

    @property
    def charged(self) -> int:
        return self.data_reads + self.data_writes + self.dir_reads + self.dir_writes

    @property
    def touches(self) -> int:
        """All page touches, counted or not — the apportionment weight."""
        return self.charged + self.free

    def stats(self) -> AccessStats:
        return AccessStats(
            self.data_reads, self.data_writes, self.dir_reads, self.dir_writes
        )

    def as_dict(self) -> dict:
        return {
            "structure": self.structure,
            "op": self.op,
            "phase": self.phase,
            "operations": self.operations,
            "data_reads": self.data_reads,
            "data_writes": self.data_writes,
            "dir_reads": self.dir_reads,
            "dir_writes": self.dir_writes,
            "charged": self.charged,
            "free": self.free,
            "wall_ns": self.wall_ns,
        }


#: Label of the synthetic row carrying a timer with no matching spans.
UNTRACED = "(untraced)"


@dataclass
class CostAttribution:
    """Exact rollup of spans + timers into per-operation rows."""

    rows: list[OpCost] = field(default_factory=list)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_spans(
        cls,
        spans: Iterable[Span],
        timers: Mapping[str, float] | None = None,
    ) -> "CostAttribution":
        """Group spans by ``(structure, op)`` and apportion the timers.

        ``timers`` maps ``"<structure>/build"`` / ``"<structure>/queries"``
        to seconds, exactly as the drivers and the parallel merge emit
        them.
        """
        groups: dict[tuple[str, str], OpCost] = {}
        for span in spans:
            key = (span.structure, span.op)
            row = groups.get(key)
            if row is None:
                row = groups[key] = OpCost(
                    span.structure, span.op, phase_of(span.op)
                )
            row.operations += 1
            row.data_reads += span.data_reads
            row.data_writes += span.data_writes
            row.dir_reads += span.dir_reads
            row.dir_writes += span.dir_writes
            row.free += span.free_accesses
        self = cls(rows=list(groups.values()))
        self._apportion_timers(timers or {})
        return self

    @classmethod
    def from_report(cls, report) -> "CostAttribution":
        """Rebuild an attribution from a saved RunReport.

        Uses the report's per-operation touch summaries (``build.ops``
        and ``queries[*].touches``) plus its timers, so a flamegraph
        does not need the original span stream.
        """
        rows: list[OpCost] = []
        timers: dict[str, float] = {}
        for name, entry in report.structures.items():
            build = entry.get("build", {})
            timers[f"{name}/build"] = build.get("seconds", 0.0)
            for op, touch in build.get("ops", {}).items():
                rows.append(_row_from_touches(name, op, touch))
            queries = entry.get("queries", {})
            timers[f"{name}/queries"] = sum(
                q.get("seconds", 0.0) for q in queries.values()
            )
            for op, q in queries.items():
                touch = q.get("touches")
                if touch is not None:
                    rows.append(_row_from_touches(name, op, touch))
        self = cls(rows=rows)
        self._apportion_timers(timers)
        return self

    def _apportion_timers(self, timers: Mapping[str, float]) -> None:
        for key in timers:
            seconds = timers[key]
            name, _, suffix = key.rpartition("/")
            if not name:
                continue
            phase = "build" if suffix == "build" else "query"
            members = [
                row
                for row in self.rows
                if row.structure == name and row.phase == phase
            ]
            t_ns = round(seconds * 1e9)
            if not members:
                if t_ns:
                    self.rows.append(
                        OpCost(name, UNTRACED, phase, wall_ns=t_ns)
                    )
                continue
            for row, share in zip(
                members, apportion(t_ns, [row.touches for row in members])
            ):
                row.wall_ns += share

    # -- totals ------------------------------------------------------------

    def stats(self) -> AccessStats:
        """Charged accesses over all rows — equals the tracer's totals."""
        total = AccessStats()
        for row in self.rows:
            total.data_reads += row.data_reads
            total.data_writes += row.data_writes
            total.dir_reads += row.dir_reads
            total.dir_writes += row.dir_writes
        return total

    @property
    def total_wall_ns(self) -> int:
        """Attributed wall time — equals ``sum(round(t * 1e9))`` exactly."""
        return sum(row.wall_ns for row in self.rows)

    def phase_wall_ns(self) -> dict[str, dict[str, int]]:
        """structure -> phase -> attributed nanoseconds."""
        out: dict[str, dict[str, int]] = {}
        for row in self.rows:
            per = out.setdefault(row.structure, {})
            per[row.phase] = per.get(row.phase, 0) + row.wall_ns
        return out

    # -- views -------------------------------------------------------------

    def heatmap(self) -> dict[str, dict[str, dict[str, int]]]:
        """Counted-vs-uncounted touches: structure -> op -> {charged, free}."""
        out: dict[str, dict[str, dict[str, int]]] = {}
        for row in self.rows:
            if row.op == UNTRACED:
                continue
            per = out.setdefault(row.structure, {})
            cell = per.setdefault(row.op, {"charged": 0, "free": 0})
            cell["charged"] += row.charged
            cell["free"] += row.free
        return out

    def stacks(self, unit: str = "accesses") -> list[tuple[tuple[str, ...], int]]:
        """Flamegraph frames ``(structure, phase, op)`` with weights.

        ``unit`` is ``"accesses"`` (charged disk accesses) or ``"wall"``
        (attributed nanoseconds); zero-weight rows are dropped.
        """
        if unit not in ("accesses", "wall"):
            raise ValueError(f"unknown stack unit {unit!r}")
        out = []
        for row in self.rows:
            weight = row.charged if unit == "accesses" else row.wall_ns
            if weight > 0:
                out.append(((row.structure, row.phase, row.op), weight))
        return out

    # -- (de)serialisation / rendering -------------------------------------

    def as_dict(self) -> dict:
        return {
            "rows": [row.as_dict() for row in self.rows],
            "totals": self.stats().as_dict(),
            "total_wall_ns": self.total_wall_ns,
        }

    def render(self, fmt: str = "text") -> str:
        """Attribution table, sorted heaviest-first within a structure."""
        rows = sorted(
            self.rows,
            key=lambda r: (r.structure, 0 if r.phase == "build" else 1, -r.wall_ns),
        )
        if fmt == "markdown":
            lines = [
                "| structure | phase | op | ops | charged | free | wall_ms |",
                "| --- | --- | --- | ---: | ---: | ---: | ---: |",
            ]
            for r in rows:
                lines.append(
                    f"| {r.structure} | {r.phase} | {r.op or '(setup)'} "
                    f"| {r.operations} | {r.charged} | {r.free} "
                    f"| {r.wall_ns / 1e6:.3f} |"
                )
            return "\n".join(lines)
        lines = [
            f"{'structure':12s}{'phase':7s}{'op':16s}{'ops':>8s}"
            f"{'charged':>9s}{'free':>9s}{'wall_ms':>10s}"
        ]
        for r in rows:
            lines.append(
                f"{r.structure:12s}{r.phase:7s}{(r.op or '(setup)'):16s}"
                f"{r.operations:>8d}{r.charged:>9d}{r.free:>9d}"
                f"{r.wall_ns / 1e6:>10.3f}"
            )
        totals = self.stats()
        lines.append(
            f"{'TOTAL':35s}{sum(r.operations for r in rows):>8d}"
            f"{totals.total:>9d}{sum(r.free for r in rows):>9d}"
            f"{self.total_wall_ns / 1e6:>10.3f}"
        )
        return "\n".join(lines)

    def render_heatmap(self, fmt: str = "text") -> str:
        """Counted-vs-uncounted table with the free share per cell."""
        cells = []
        for structure, per in self.heatmap().items():
            for op, cell in per.items():
                touches = cell["charged"] + cell["free"]
                share = 100.0 * cell["free"] / touches if touches else 0.0
                cells.append((structure, op or "(setup)", cell, share))
        if fmt == "markdown":
            lines = [
                "| structure | op | charged | free | free share |",
                "| --- | --- | ---: | ---: | ---: |",
            ]
            for structure, op, cell, share in cells:
                lines.append(
                    f"| {structure} | {op} | {cell['charged']} "
                    f"| {cell['free']} | {share:.1f}% |"
                )
            return "\n".join(lines)
        lines = [
            f"{'structure':12s}{'op':16s}{'charged':>9s}{'free':>9s}"
            f"{'free share':>12s}"
        ]
        for structure, op, cell, share in cells:
            lines.append(
                f"{structure:12s}{op:16s}{cell['charged']:>9d}"
                f"{cell['free']:>9d}{share:>11.1f}%"
            )
        return "\n".join(lines)


def _row_from_touches(structure: str, op: str, touch: Mapping) -> OpCost:
    return OpCost(
        structure,
        op,
        phase_of(op),
        operations=int(touch.get("operations", 0)),
        data_reads=int(touch.get("data_reads", 0)),
        data_writes=int(touch.get("data_writes", 0)),
        dir_reads=int(touch.get("dir_reads", 0)),
        dir_writes=int(touch.get("dir_writes", 0)),
        free=int(touch.get("free", 0)),
    )


# -- CLI --------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.profile",
        description="Cost-attribution profile of a saved run report.",
    )
    parser.add_argument("report", metavar="REPORT.json")
    parser.add_argument("--format", choices=("text", "markdown"), default="text")
    parser.add_argument(
        "--heatmap",
        action="store_true",
        help="show the counted-vs-uncounted page-touch table too",
    )
    parser.add_argument(
        "--speedscope",
        metavar="OUT.json",
        default=None,
        help="write a speedscope profile (flamegraph at speedscope.app)",
    )
    parser.add_argument(
        "--collapsed",
        metavar="OUT.txt",
        default=None,
        help="write Brendan Gregg collapsed-stack lines (for flamegraph.pl)",
    )
    parser.add_argument(
        "--unit",
        choices=("accesses", "wall"),
        default="accesses",
        help="flamegraph weight: charged disk accesses or wall nanoseconds",
    )
    args = parser.parse_args(argv)

    from repro.obs.export import (
        RunReport,
        profile_to_collapsed,
        profile_to_speedscope,
    )

    try:
        report = RunReport.load(args.report)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    attribution = CostAttribution.from_report(report)
    print(attribution.render(args.format))
    if args.heatmap:
        print()
        print(attribution.render_heatmap(args.format))
    if args.speedscope:
        doc = profile_to_speedscope(
            attribution, name=report.label, unit=args.unit
        )
        Path(args.speedscope).write_text(
            json.dumps(doc, separators=(",", ":")) + "\n", encoding="utf-8"
        )
        print(f"wrote speedscope profile -> {args.speedscope}")
    if args.collapsed:
        Path(args.collapsed).write_text(
            profile_to_collapsed(attribution, unit=args.unit), encoding="utf-8"
        )
        print(f"wrote collapsed stacks -> {args.collapsed}")
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Piped into head & co. — close stdout quietly instead of a traceback.
        import os

        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        raise SystemExit(1)
