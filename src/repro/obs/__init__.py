"""Observability for the access-method testbed.

The paper's entire argument rests on *counting page accesses*, so this
package makes those counts observable at every granularity:

* :mod:`repro.obs.tracer` — a low-overhead :class:`Tracer` that attaches
  to a :class:`~repro.storage.pagestore.PageStore` as its observer and
  records one :class:`Span` per bracketed operation (insert / delete /
  query), optionally down to individual page-access events.
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  fixed-bucket histograms with exact percentile summaries
  (p50/p90/p99/max) and wall-clock timers.
* :mod:`repro.obs.export` — exporters: a JSONL trace sink, human-readable
  table rendering and the structured :class:`RunReport` JSON that every
  benchmark emits alongside its ``results/*.txt`` table.
* :mod:`repro.obs.runner` — :func:`traced_pam_run` /
  :func:`traced_sam_run`, which wrap the §3/§7 experiment driver with a
  tracer and produce a :class:`RunReport`.
* :mod:`repro.obs.report` — the ``python -m repro.obs.report`` CLI that
  prints, validates and diffs run reports.
* :mod:`repro.obs.ledger` — the append-only performance ledger
  (``results/LEDGER.jsonl``) and its ``record``/``log``/``baseline``/
  ``compare``/``gate`` CLI: fingerprinted cross-run history with a
  noise-aware regression gate.
* :mod:`repro.obs.profile` — deterministic cost attribution
  (:class:`CostAttribution`): per-structure/phase/operation wall-time
  and disk-access rollups whose totals match the tracer bit-exactly,
  a counted-vs-uncounted page-touch heatmap, and flamegraph export.
* :mod:`repro.obs.explain` — EXPLAIN-style per-query execution traces
  (:class:`ExplainRecorder`): the pages each query visits, in order,
  with candidates vs hits, prune decisions and duplicate elimination,
  plus the ``python -m repro.obs.explain`` trace renderer.
* :mod:`repro.obs.structure` — uncharged structure snapshots
  (:func:`compute_snapshot`): occupancy and depth profiles plus
  first-class redundancy metrics (duplication factor, overlap volume,
  dead space, coverage).

Tracing is strictly additive: the observer hook never changes which
accesses are charged, so an instrumented run reports exactly the same
:class:`~repro.core.stats.AccessStats` as an uninstrumented one.
"""

from repro.obs.export import (
    RUN_REPORT_SCHEMA,
    JsonlTraceSink,
    RunReport,
    build_run_report,
    profile_to_collapsed,
    profile_to_speedscope,
    summarise_spans,
    summarise_touches,
    validate_run_report,
)
from repro.obs.metrics import (
    DEFAULT_ACCESS_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.obs.runner import record_to_ledger, traced_pam_run, traced_sam_run
from repro.obs.tracer import (
    BUILD_OPS,
    AccessEvent,
    Span,
    StoreObserver,
    Tracer,
    phase_of,
)

__all__ = [
    "AccessEvent",
    "BUILD_OPS",
    "CostAttribution",
    "Counter",
    "DEFAULT_ACCESS_BUCKETS",
    "EXPLAIN_SCHEMA",
    "ExplainRecorder",
    "FingerprintMismatch",
    "Histogram",
    "JsonlTraceSink",
    "LEDGER_SCHEMA",
    "Ledger",
    "LedgerEntry",
    "MetricsRegistry",
    "OpCost",
    "PageView",
    "RUN_REPORT_SCHEMA",
    "RunReport",
    "SNAPSHOT_SCHEMA",
    "Span",
    "StoreObserver",
    "Timer",
    "Tracer",
    "apportion",
    "build_run_report",
    "collect_fingerprint",
    "compute_snapshot",
    "entry_from_bench_document",
    "entry_from_run_report",
    "entry_from_timers",
    "gate_run",
    "ledger_from_env",
    "page_heatmap",
    "phase_of",
    "profile_to_collapsed",
    "profile_to_speedscope",
    "record_to_ledger",
    "render_heatmap",
    "render_snapshot",
    "render_trace",
    "resolve_ledger",
    "snapshot_to_json",
    "summarise_spans",
    "summarise_touches",
    "traced_pam_run",
    "traced_sam_run",
    "validate_explain",
    "validate_run_report",
    "validate_snapshot",
]

# Ledger, profile and explain names resolve lazily (PEP 562): those
# modules have ``python -m`` entry points, and an eager import here
# would trigger runpy's found-in-sys.modules double-import warning on
# every CLI call.  Structure names ride along for symmetry.
_LEDGER_NAMES = frozenset(
    {
        "LEDGER_SCHEMA",
        "FingerprintMismatch",
        "Ledger",
        "LedgerEntry",
        "collect_fingerprint",
        "entry_from_bench_document",
        "entry_from_run_report",
        "entry_from_timers",
        "gate_run",
        "ledger_from_env",
        "resolve_ledger",
    }
)
_PROFILE_NAMES = frozenset({"CostAttribution", "OpCost", "apportion"})
_EXPLAIN_NAMES = frozenset(
    {
        "EXPLAIN_SCHEMA",
        "ExplainRecorder",
        "page_heatmap",
        "render_heatmap",
        "render_trace",
        "validate_explain",
    }
)
_STRUCTURE_NAMES = frozenset(
    {
        "SNAPSHOT_SCHEMA",
        "PageView",
        "compute_snapshot",
        "render_snapshot",
        "snapshot_to_json",
        "validate_snapshot",
    }
)


def __getattr__(name: str):
    if name in _LEDGER_NAMES:
        from repro.obs import ledger

        return getattr(ledger, name)
    if name in _PROFILE_NAMES:
        from repro.obs import profile

        return getattr(profile, name)
    if name in _EXPLAIN_NAMES:
        from repro.obs import explain

        return getattr(explain, name)
    if name in _STRUCTURE_NAMES:
        from repro.obs import structure

        return getattr(structure, name)
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
