"""Observability for the access-method testbed.

The paper's entire argument rests on *counting page accesses*, so this
package makes those counts observable at every granularity:

* :mod:`repro.obs.tracer` — a low-overhead :class:`Tracer` that attaches
  to a :class:`~repro.storage.pagestore.PageStore` as its observer and
  records one :class:`Span` per bracketed operation (insert / delete /
  query), optionally down to individual page-access events.
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  fixed-bucket histograms with exact percentile summaries
  (p50/p90/p99/max) and wall-clock timers.
* :mod:`repro.obs.export` — exporters: a JSONL trace sink, human-readable
  table rendering and the structured :class:`RunReport` JSON that every
  benchmark emits alongside its ``results/*.txt`` table.
* :mod:`repro.obs.runner` — :func:`traced_pam_run` /
  :func:`traced_sam_run`, which wrap the §3/§7 experiment driver with a
  tracer and produce a :class:`RunReport`.
* :mod:`repro.obs.report` — the ``python -m repro.obs.report`` CLI that
  prints, validates and diffs run reports.

Tracing is strictly additive: the observer hook never changes which
accesses are charged, so an instrumented run reports exactly the same
:class:`~repro.core.stats.AccessStats` as an uninstrumented one.
"""

from repro.obs.export import (
    RUN_REPORT_SCHEMA,
    JsonlTraceSink,
    RunReport,
    build_run_report,
    summarise_spans,
    validate_run_report,
)
from repro.obs.metrics import (
    DEFAULT_ACCESS_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.obs.runner import traced_pam_run, traced_sam_run
from repro.obs.tracer import AccessEvent, Span, StoreObserver, Tracer

__all__ = [
    "AccessEvent",
    "Counter",
    "DEFAULT_ACCESS_BUCKETS",
    "Histogram",
    "JsonlTraceSink",
    "MetricsRegistry",
    "RUN_REPORT_SCHEMA",
    "RunReport",
    "Span",
    "StoreObserver",
    "Timer",
    "Tracer",
    "build_run_report",
    "summarise_spans",
    "traced_pam_run",
    "traced_sam_run",
    "validate_run_report",
]
