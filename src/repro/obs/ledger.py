"""The performance ledger: ``results/LEDGER.jsonl`` and its CLI.

Every bench produces a one-shot JSON artefact; the **ledger** is the
append-only history that strings those one-shots into a trajectory.
One line per run (schema :data:`LEDGER_SCHEMA`), each carrying

* a **fingerprint** — git commit, a hash over every ``repro`` source
  file (the build cache's :func:`~repro.parallel.cache.code_fingerprint`),
  page size, scale, seed, worker count, ``REPRO_VECTOR`` mode and the
  ``REPRO_VECTOR_PROMOTE`` threshold override — so runs are only ever
  compared against runs of the same code and configuration;
* **metrics** — an arbitrary nesting of numeric leaves; wall-clock
  costs end in ``_seconds`` and are the leaves the regression gate
  evaluates (lower is better);
* optional per-structure **access totals** (deterministic under a fixed
  fingerprint, so any drift is flagged as a correctness problem, not a
  perf regression) and references to the run's RunReport files.

Records are written with ``O_APPEND`` as single ``write(2)`` calls, so
parallel workers and interrupted runs can never interleave or tear a
committed line; a truncated trailing line from a crashed process is
skipped and reported on the next read.

CLI::

    python -m repro.obs.ledger record results/BENCH_QUERY.json
    python -m repro.obs.ledger log [--limit N] [--format markdown]
    python -m repro.obs.ledger baseline set <run> | baseline show
    python -m repro.obs.ledger compare <run> <run> [--format markdown]
    python -m repro.obs.ledger gate [--max-regression PCT] [--window N]

``gate`` is noise-aware: the candidate (latest run by default) is
compared against the **median** of the last ``--window`` runs with the
same fingerprint — never across differing fingerprints — or against
the pinned per-fingerprint baseline when one is set.  ``record
--inflate 2`` multiplies every ``*_seconds`` leaf, which is how CI
verifies the gate actually fails on a synthetic 2x slowdown.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import statistics
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

__all__ = [
    "LEDGER_SCHEMA",
    "FingerprintMismatch",
    "Ledger",
    "LedgerEntry",
    "GateResult",
    "collect_fingerprint",
    "fingerprint_digest",
    "flatten_metrics",
    "compare_entries",
    "gate_run",
    "format_metric_rows",
    "entry_from_run_report",
    "entry_from_timers",
    "entry_from_bench_document",
    "storage_io_totals",
    "storage_latency_leaves",
    "default_ledger_path",
    "ledger_from_env",
    "resolve_ledger",
    "main",
]

#: Schema identifier embedded in every ledger line.
LEDGER_SCHEMA = "repro.obs/ledger/v1"

#: Gate-relevant metric leaves: wall-clock costs, lower is better.
GATED_SUFFIX = "_seconds"


class FingerprintMismatch(ValueError):
    """Raised when asked to compare runs with differing fingerprints."""


def default_ledger_path() -> Path:
    """``<repo>/results/LEDGER.jsonl`` (or ``./results`` outside one)."""
    from repro.parallel.cache import default_results_root

    return default_results_root() / "LEDGER.jsonl"


def _git_commit() -> str:
    """The checkout's HEAD commit, or ``"unknown"`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else "unknown"


def collect_fingerprint(
    *,
    page_size: int,
    scale: int,
    seed: int | None = None,
    workers: int = 1,
    vector: str | None = None,
    promote: str | None = None,
    commit: str | None = None,
    code: str | None = None,
    storage: Mapping | None = None,
) -> dict:
    """Everything a run's performance legitimately depends on.

    ``vector`` defaults to the resolved ``REPRO_VECTOR`` mode (``"1"``
    or ``"0"``); A/B harnesses that time both modes pass ``"ab"``.
    ``promote`` defaults to the ``REPRO_VECTOR_PROMOTE`` threshold
    override (``"default"`` when unset) — tuned runs carry the value so
    they never gate against untuned baselines.  ``code`` reuses the
    build cache's source fingerprint, so any edit anywhere in the
    package separates histories automatically.

    ``storage`` describes a durable backend (at least ``backend``,
    typically also the pool budget and fsync mode): a disk run must
    never gate against a sim run's timings.  The key is **added only
    when given** — simulated runs keep the exact historical dict shape,
    so every previously recorded digest and pinned baseline stays
    valid.
    """
    if vector is None:
        from repro.query.columnar import vector_enabled

        vector = "1" if vector_enabled() else "0"
    if promote is None:
        promote = os.environ.get("REPRO_VECTOR_PROMOTE", "").strip() or "default"
    if code is None:
        from repro.parallel.cache import code_fingerprint

        code = code_fingerprint()
    fingerprint = {
        "git_commit": commit if commit is not None else _git_commit(),
        "code": code,
        "page_size": page_size,
        "scale": scale,
        "seed": seed,
        "workers": workers,
        "vector": str(vector),
        "vector_promote": str(promote),
    }
    if storage is not None:
        fingerprint["storage"] = dict(storage)
    return fingerprint


def fingerprint_digest(fingerprint: Mapping) -> str:
    """Short stable digest of a fingerprint dict (key order agnostic)."""
    canonical = json.dumps(dict(fingerprint), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclass
class LedgerEntry:
    """One recorded run — a single line of the ledger."""

    label: str
    source: str
    fingerprint: dict
    metrics: dict
    totals: dict | None = None
    reports: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)
    timestamp: str = ""
    run_id: str = ""
    schema: str = LEDGER_SCHEMA

    def __post_init__(self):
        if not self.timestamp:
            self.timestamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())

    @property
    def digest(self) -> str:
        return fingerprint_digest(self.fingerprint)

    @property
    def total_seconds(self) -> float | None:
        value = self.metrics.get("total_seconds")
        return float(value) if isinstance(value, (int, float)) else None

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "run_id": self.run_id,
            "timestamp": self.timestamp,
            "label": self.label,
            "source": self.source,
            "fingerprint": self.fingerprint,
            "fingerprint_digest": self.digest,
            "metrics": self.metrics,
            "totals": self.totals,
            "reports": self.reports,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "LedgerEntry":
        if not isinstance(data, Mapping):
            raise ValueError("ledger entry is not a JSON object")
        if data.get("schema") != LEDGER_SCHEMA:
            raise ValueError(
                f"schema is {data.get('schema')!r}, expected {LEDGER_SCHEMA!r}"
            )
        for key, types in (
            ("label", str),
            ("source", str),
            ("fingerprint", Mapping),
            ("metrics", Mapping),
        ):
            if not isinstance(data.get(key), types):
                raise ValueError(f"missing or mistyped field {key!r}")
        return cls(
            label=data["label"],
            source=data["source"],
            fingerprint=dict(data["fingerprint"]),
            metrics=dict(data["metrics"]),
            totals=dict(data["totals"]) if data.get("totals") else None,
            reports=dict(data.get("reports") or {}),
            meta=dict(data.get("meta") or {}),
            timestamp=data.get("timestamp", ""),
            run_id=data.get("run_id", ""),
        )


class Ledger:
    """Append-only JSONL store of :class:`LedgerEntry` records.

    Appends are single ``O_APPEND`` writes of one newline-terminated
    line, so concurrent writers sharing the file never interleave and
    an interrupted writer can at worst leave a truncated *trailing*
    line — which :meth:`read` skips and reports instead of failing.
    """

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else default_ledger_path()

    # -- writing -----------------------------------------------------------

    def record(self, entry: LedgerEntry) -> LedgerEntry:
        """Append ``entry`` (assigning its ``run_id``) and return it."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not entry.run_id:
            payload = entry.to_dict()
            payload.pop("run_id")
            material = json.dumps(payload, sort_keys=True, separators=(",", ":"))
            nonce = f"#{os.getpid()}#{self._line_count()}"
            entry.run_id = hashlib.sha256(
                (material + nonce).encode()
            ).hexdigest()[:12]
        line = json.dumps(entry.to_dict(), sort_keys=True, separators=(",", ":"))
        if "\n" in line:  # pragma: no cover - json never emits raw newlines
            raise ValueError("ledger records must be single lines")
        fd = os.open(
            self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            os.write(fd, (line + "\n").encode("utf-8"))
        finally:
            os.close(fd)
        return entry

    def _line_count(self) -> int:
        try:
            with self.path.open("rb") as fh:
                return sum(1 for _ in fh)
        except OSError:
            return 0

    # -- reading -----------------------------------------------------------

    def read(self) -> tuple[list[LedgerEntry], list[str]]:
        """All well-formed entries plus a report of skipped lines.

        Malformed lines — torn trailing writes from a killed process,
        manual edits — never poison the history: they are skipped and
        described in the returned problem list.
        """
        entries: list[LedgerEntry] = []
        problems: list[str] = []
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return entries, problems
        for lineno, raw in enumerate(text.splitlines(), 1):
            if not raw.strip():
                continue
            try:
                entries.append(LedgerEntry.from_dict(json.loads(raw)))
            except (json.JSONDecodeError, ValueError) as exc:
                problems.append(f"line {lineno}: {exc}")
        return entries, problems

    def entries(self) -> list[LedgerEntry]:
        return self.read()[0]

    def get(self, run_id: str) -> LedgerEntry:
        """The entry with ``run_id`` (unambiguous prefixes accepted)."""
        matches = [
            e for e in self.entries() if e.run_id == run_id
        ] or [e for e in self.entries() if e.run_id.startswith(run_id)]
        if not matches:
            raise KeyError(f"no ledger entry with run id {run_id!r}")
        if len({e.run_id for e in matches}) > 1:
            raise KeyError(f"run id prefix {run_id!r} is ambiguous")
        return matches[-1]

    # -- baselines ---------------------------------------------------------

    @property
    def baseline_path(self) -> Path:
        return self.path.with_name(f"{self.path.stem}_BASELINE.json")

    def baselines(self) -> dict:
        """Per-fingerprint pinned baselines: digest -> {run, label, ...}."""
        try:
            return json.loads(self.baseline_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return {}

    def set_baseline(self, run_id: str) -> LedgerEntry:
        """Pin ``run_id`` as the gate baseline for its fingerprint."""
        entry = self.get(run_id)
        data = self.baselines()
        data[entry.digest] = {
            "run": entry.run_id,
            "label": entry.label,
            "timestamp": entry.timestamp,
        }
        tmp = self.baseline_path.with_name(
            f"{self.baseline_path.name}.tmp{os.getpid()}"
        )
        tmp.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
        os.replace(tmp, self.baseline_path)
        return entry


# -- env / argument resolution ---------------------------------------------

_OFF_VALUES = {"0", "off", "none", "no", "false"}


def ledger_from_env(env: str = "REPRO_LEDGER") -> Ledger | None:
    """The ledger configured by the environment (``None`` when unset).

    ``REPRO_LEDGER=1`` records to the default ``results/LEDGER.jsonl``;
    any other non-off value is used as the ledger path.
    """
    value = os.environ.get(env)
    if value is None or value.strip().lower() in _OFF_VALUES | {""}:
        return None
    if value.strip() == "1":
        return Ledger()
    return Ledger(value)


def resolve_ledger(value) -> Ledger | None:
    """Normalise a ledger argument: instance, path, bool, or env default.

    ``None`` defers to ``REPRO_LEDGER``; ``False`` (or an off-string
    like ``"0"``) disables recording outright; ``True`` (or ``"1"``)
    uses the default path; anything else is taken as the ledger path.
    """
    if value is None:
        return ledger_from_env()
    if value is False:
        return None
    if value is True:
        return Ledger()
    if isinstance(value, Ledger):
        return value
    if isinstance(value, str):
        if value.strip().lower() in _OFF_VALUES | {""}:
            return None
        if value.strip() == "1":
            return Ledger()
    return Ledger(value)


# -- metric comparison ------------------------------------------------------


def flatten_metrics(metrics: Mapping, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a nested metrics dict as ``a/b/c`` paths."""
    out: dict[str, float] = {}
    for key in sorted(metrics):
        value = metrics[key]
        path = f"{prefix}{key}"
        if isinstance(value, Mapping):
            out.update(flatten_metrics(value, f"{path}/"))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            out[path] = float(value)
    return out


def compare_entries(old: LedgerEntry, new: LedgerEntry) -> list[dict]:
    """Shared-metric deltas between two runs of the same fingerprint.

    Raises :class:`FingerprintMismatch` when the runs differ in commit,
    code, or configuration — cross-fingerprint deltas are meaningless
    and the ledger refuses to print them as if they weren't.
    """
    if old.digest != new.digest:
        differing = sorted(
            key
            for key in {*old.fingerprint, *new.fingerprint}
            if old.fingerprint.get(key) != new.fingerprint.get(key)
        )
        raise FingerprintMismatch(
            f"refusing to compare {old.run_id} and {new.run_id}: "
            f"fingerprints differ in {', '.join(differing) or 'shape'}"
        )
    old_flat = flatten_metrics(old.metrics)
    rows = []
    for key, value in flatten_metrics(new.metrics).items():
        if key not in old_flat:
            continue
        reference = old_flat[key]
        delta = 100.0 * (value - reference) / reference if reference else 0.0
        rows.append(
            {"metric": key, "old": reference, "new": value, "delta_pct": delta}
        )
    return rows


def format_metric_rows(
    rows: Sequence[Mapping],
    threshold: float | None = None,
    fmt: str = "text",
) -> str:
    """Render comparison/gate rows as a text or markdown table."""
    gated = lambda row: (  # noqa: E731 - tiny local predicate
        threshold is not None
        and row["metric"].endswith(GATED_SUFFIX)
        and row["delta_pct"] > threshold
    )
    if fmt == "markdown":
        lines = [
            "| metric | old | new | delta |",
            "| --- | ---: | ---: | ---: |",
        ]
        for row in rows:
            flag = " **REGRESSION**" if gated(row) else ""
            lines.append(
                f"| `{row['metric']}` | {row['old']:.6g} | {row['new']:.6g} "
                f"| {row['delta_pct']:+.1f}%{flag} |"
            )
        return "\n".join(lines)
    lines = [f"{'metric':44s}{'old':>12s}{'new':>12s}{'delta':>9s}"]
    for row in rows:
        flag = "  REGRESSION" if gated(row) else ""
        lines.append(
            f"{row['metric']:44s}{row['old']:>12.6g}{row['new']:>12.6g}"
            f"{row['delta_pct']:>+8.1f}%{flag}"
        )
    return "\n".join(lines)


# -- the gate ---------------------------------------------------------------


@dataclass
class GateResult:
    """Outcome of one gate evaluation."""

    ok: bool
    notes: list[str] = field(default_factory=list)
    rows: list[dict] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)


def gate_run(
    ledger: Ledger,
    *,
    run_id: str | None = None,
    max_regression: float = 25.0,
    window: int = 5,
) -> GateResult:
    """Gate a run against its own fingerprint's history.

    The candidate (``run_id`` or the latest entry) is compared against
    the pinned baseline for its fingerprint if one exists, otherwise
    against the per-metric **median** of the last ``window`` runs with
    the identical fingerprint recorded before it.  Only ``*_seconds``
    leaves gate (wall-clock cost, lower is better); a run whose access
    totals drift from the reference fails outright regardless of
    ``max_regression``, because those are deterministic under a fixed
    fingerprint.
    """
    entries, problems = ledger.read()
    result = GateResult(ok=True)
    result.notes.extend(f"skipped malformed {p}" for p in problems)
    if not entries:
        result.ok = False
        result.failures.append(f"ledger {ledger.path} has no readable entries")
        return result
    if run_id is None:
        candidate = entries[-1]
        index = len(entries) - 1
    else:
        candidate = ledger.get(run_id)
        index = max(i for i, e in enumerate(entries) if e.run_id == candidate.run_id)
    history = [e for e in entries[:index] if e.digest == candidate.digest]

    baseline = ledger.baselines().get(candidate.digest)
    reference: list[LedgerEntry]
    if baseline:
        try:
            reference = [ledger.get(baseline["run"])]
            result.notes.append(f"reference: pinned baseline {baseline['run']}")
        except KeyError:
            result.notes.append(
                f"pinned baseline {baseline['run']} missing; using history"
            )
            reference = history[-window:]
    else:
        reference = history[-window:]
    if not reference:
        result.notes.append(
            f"no prior runs with fingerprint {candidate.digest}; nothing to gate"
        )
        return result
    if not baseline:
        result.notes.append(
            f"reference: median of {len(reference)} same-fingerprint run(s)"
        )

    flat_reference = [flatten_metrics(e.metrics) for e in reference]
    for key, value in flatten_metrics(candidate.metrics).items():
        samples = [flat[key] for flat in flat_reference if key in flat]
        if not samples:
            continue
        median = statistics.median(samples)
        delta = 100.0 * (value - median) / median if median else 0.0
        result.rows.append(
            {"metric": key, "old": median, "new": value, "delta_pct": delta}
        )
        if key.endswith(GATED_SUFFIX) and delta > max_regression:
            result.failures.append(
                f"{key}: {value:.6g} is {delta:+.1f}% vs median {median:.6g} "
                f"(limit {max_regression:.1f}%)"
            )

    reference_totals = next(
        (e.totals for e in reversed(reference) if e.totals), None
    )
    if candidate.totals and reference_totals and candidate.totals != reference_totals:
        drifted = sorted(
            name
            for name in {*candidate.totals, *reference_totals}
            if candidate.totals.get(name) != reference_totals.get(name)
        )
        result.failures.append(
            "access totals drifted under an identical fingerprint "
            f"({', '.join(drifted)}) — behaviour change, not noise"
        )

    result.ok = not result.failures
    return result


# -- entry builders ---------------------------------------------------------


def storage_io_totals(storage: Mapping) -> dict:
    """The deterministic projection of one ``io_stats()`` document.

    Pool traffic, page-file and WAL counters, commit/checkpoint counts
    and write amplification are pure functions of the workload under a
    fixed fingerprint, so they belong in a ledger entry's ``totals``
    (drift fails the gate outright).  Latency data deliberately stays
    out — it is noise, and gates via ``*_seconds`` metric leaves.
    """
    pool = storage.get("pool", {})
    return {
        "backend": storage.get("backend"),
        "pool_hits": pool.get("hits", 0),
        "pool_misses": pool.get("misses", 0),
        "evictions": pool.get("evictions", 0),
        "hit_rate": pool.get("hit_rate", 0.0),
        "pagefile_reads": storage.get("pagefile", {}).get("reads", 0),
        "pagefile_writes": storage.get("pagefile", {}).get("writes", 0),
        "wal_records": storage.get("wal", {}).get("records", 0),
        "wal_bytes": storage.get("wal", {}).get("bytes", 0),
        "commits": storage.get("commits", 0),
        "checkpoints": storage.get("checkpoints", 0),
        "write_amplification": storage.get("write_amplification", 0.0),
    }


def storage_latency_leaves(storage: Mapping) -> dict[str, float]:
    """Gated ``*_seconds`` leaves from an ``io_stats()`` latency block."""
    fsync = (storage.get("latency") or {}).get("storage.io.fsync_seconds")
    if isinstance(fsync, Mapping) and fsync.get("count"):
        return {
            "fsync_p50_seconds": fsync["p50"],
            "fsync_p99_seconds": fsync["p99"],
        }
    return {}


def entry_from_timers(
    *,
    label: str,
    source: str,
    kind: str,
    timers: Mapping[str, float],
    totals: Mapping | None = None,
    page_size: int,
    scale: int,
    seed: int | None,
    workers: int = 1,
    reports: Mapping | None = None,
    meta: Mapping | None = None,
    fingerprint: Mapping | None = None,
) -> LedgerEntry:
    """Build an entry from ``<structure>/build|queries`` timer seconds.

    ``totals`` maps structure name to an access-stats mapping (or an
    object with ``as_dict``); they ride along so the gate can detect
    behaviour drift, not just slowdowns.
    """
    structures: dict[str, dict[str, float]] = {}
    for key, seconds in timers.items():
        name, _, phase = key.rpartition("/")
        if not name:
            continue
        metric = "build_seconds" if phase == "build" else "query_seconds"
        structures.setdefault(name, {})[metric] = (
            structures.get(name, {}).get(metric, 0.0) + seconds
        )
    metrics: dict = {
        "total_seconds": sum(timers.values()),
        "structures": structures,
    }
    totals_dict = None
    if totals:
        totals_dict = {
            name: stats.as_dict() if hasattr(stats, "as_dict") else dict(stats)
            for name, stats in totals.items()
        }
    return LedgerEntry(
        label=label,
        source=source,
        fingerprint=dict(fingerprint)
        if fingerprint is not None
        else collect_fingerprint(
            page_size=page_size, scale=scale, seed=seed, workers=workers
        ),
        metrics=metrics,
        totals=totals_dict,
        reports=dict(reports or {}),
        meta={"kind": kind, **dict(meta or {})},
    )


def entry_from_run_report(
    report,
    *,
    label: str | None = None,
    source: str = "repro.obs.runner",
    workers: int = 1,
    reports: Mapping | None = None,
    meta: Mapping | None = None,
    fingerprint: Mapping | None = None,
) -> LedgerEntry:
    """Derive a ledger entry from a :class:`~repro.obs.export.RunReport`.

    A structure entry carrying a ``snapshot`` contributes the snapshot's
    redundancy metrics to its access totals, so the gate flags
    redundancy drift under an identical fingerprint exactly like an
    access-count drift (both are deterministic, so any change is a
    behaviour change).

    A structure entry carrying a ``storage`` block (durable backend)
    contributes twice: the *deterministic* physical-IO counters (pool
    hits/misses/evictions, page-file and WAL traffic, commits, write
    amplification) fold into the structure's access totals — drift
    under an identical fingerprint fails the gate outright — while the
    *noisy* fsync latency percentiles land as ``*_seconds`` metric
    leaves, gated at the usual regression threshold.  The fingerprint
    additionally grows a ``storage`` key (backend + pool budget) so
    disk runs never gate against sim history.
    """
    timers: dict[str, float] = {}
    totals: dict[str, dict] = {}
    storage_fp: dict | None = None
    latency_leaves: dict[str, dict[str, float]] = {}
    for name, entry in report.structures.items():
        timers[f"{name}/build"] = entry.get("build", {}).get("seconds", 0.0)
        timers[f"{name}/queries"] = sum(
            q.get("seconds", 0.0) for q in entry.get("queries", {}).values()
        )
        totals[name] = dict(entry.get("totals", {}))
        redundancy = (entry.get("snapshot") or {}).get("redundancy")
        if isinstance(redundancy, Mapping):
            totals[name]["redundancy"] = dict(redundancy)
        storage = entry.get("storage")
        if not isinstance(storage, Mapping):
            continue
        if storage_fp is None:
            storage_fp = {
                "backend": storage.get("backend", "disk"),
                "pool": storage.get("pool", {}).get("budget"),
            }
        totals[name]["storage_io"] = storage_io_totals(storage)
        leaves = storage_latency_leaves(storage)
        if leaves:
            latency_leaves[name] = leaves
    if fingerprint is None and storage_fp is not None:
        fingerprint = collect_fingerprint(
            page_size=report.page_size,
            scale=report.scale,
            seed=report.seed,
            workers=workers,
            storage=storage_fp,
        )
    ledger_entry = entry_from_timers(
        label=label or report.label,
        source=source,
        kind=report.kind,
        timers=timers,
        totals=totals,
        page_size=report.page_size,
        scale=report.scale,
        seed=report.seed,
        workers=workers,
        reports=reports,
        meta=meta,
        fingerprint=fingerprint,
    )
    for name, leaves in latency_leaves.items():
        ledger_entry.metrics["structures"].setdefault(name, {}).update(leaves)
    return ledger_entry


def _scale_seconds(metrics, factor: float):
    """Multiply every ``*_seconds`` leaf — synthetic-regression helper."""
    if isinstance(metrics, Mapping):
        return {
            key: (
                value * factor
                if key.endswith(GATED_SUFFIX)
                and isinstance(value, (int, float))
                and not isinstance(value, bool)
                else _scale_seconds(value, factor)
            )
            for key, value in metrics.items()
        }
    return metrics


def entry_from_bench_document(
    doc: Mapping,
    *,
    path: str | None = None,
    label: str | None = None,
    inflate: float = 1.0,
) -> LedgerEntry:
    """Build an entry from a bench artefact, dispatching on its schema.

    Understands ``repro.query/bench/v1`` (the scalar/vector A/B
    harness), ``repro.parallel/bench/v1`` (the grid timing bench),
    ``repro.obs/clip-redundancy/v1`` (the clipping redundancy sweep)
    and ``repro.obs/run-report/v1``.  ``inflate`` scales every
    ``*_seconds`` metric — the gate's injected-regression test hook.
    """
    schema = doc.get("schema")
    meta: dict = {"source_schema": schema}
    if path:
        meta["source_path"] = str(path)
    if inflate != 1.0:
        meta["inflate"] = inflate

    if schema == "repro.query/bench/v1":
        metrics = {
            "total_seconds": doc["vector_seconds"],
            "scalar_seconds": doc["scalar_seconds"],
            "vector_seconds": doc["vector_seconds"],
            "matrix_scalar_seconds": doc.get("matrix_scalar_seconds"),
            "matrix_vector_seconds": doc.get("matrix_vector_seconds"),
            "structures": {
                name: {
                    "scalar_seconds": t["scalar_seconds"],
                    "vector_seconds": t["vector_seconds"],
                }
                for name, t in doc.get("per_structure", {}).items()
            },
        }
        metrics = {k: v for k, v in metrics.items() if v is not None}
        meta.update(
            speedup=doc.get("speedup"), identical=doc.get("identical")
        )
        entry = LedgerEntry(
            label=label or "query-bench",
            source="repro.query.bench",
            fingerprint=collect_fingerprint(
                page_size=doc["page_size"],
                scale=doc["scale"],
                seed=None,
                workers=1,
                vector="ab",
            ),
            metrics=metrics,
            reports=dict(doc.get("reports") or {}),
            meta=meta,
        )
    elif schema == "repro.parallel/bench/v1":
        metrics = {
            "total_seconds": doc["parallel_seconds"],
            "serial_seconds": doc.get("serial_seconds"),
            "parallel_seconds": doc["parallel_seconds"],
            "warm_cache_seconds": doc.get("warm_cache_seconds"),
        }
        metrics = {k: v for k, v in metrics.items() if v is not None}
        meta.update(
            speedup=doc.get("speedup"),
            jobs=doc.get("jobs"),
            verified=doc.get("verified"),
        )
        entry = LedgerEntry(
            label=label or "parallel-bench",
            source="repro.parallel.bench",
            fingerprint=collect_fingerprint(
                page_size=doc["page_size"],
                scale=doc["scale"],
                seed=None,
                workers=doc.get("workers", 1),
            ),
            metrics=metrics,
            meta=meta,
        )
    elif schema == "repro.obs/clip-redundancy/v1":
        from repro.obs.ablation import validate_clip_redundancy

        problems = validate_clip_redundancy(doc)
        if problems:
            raise ValueError(
                "invalid clip-redundancy document: " + "; ".join(problems)
            )
        budgets: dict[str, dict] = {}
        totals: dict[str, dict] = {}
        for row in doc["rows"]:
            key = f"r{row['budget']}"
            budgets[key] = {
                "build_seconds": row["build_seconds"],
                "query_seconds": row["query_seconds"],
                "point_cost": row["point_cost"],
            }
            # Deterministic build shape + redundancy ride in totals, so
            # the gate flags drift under an identical fingerprint.
            totals[key] = {
                "data_pages": row["data_pages"],
                "regions_per_object": row["regions_per_object"],
                "redundancy": dict(row["redundancy"]),
            }
        entry = LedgerEntry(
            label=label or "clip-redundancy-sweep",
            source="benchmarks/bench_ablation_techniques.py",
            fingerprint=collect_fingerprint(
                page_size=doc["page_size"],
                scale=doc["scale"],
                seed=doc.get("seed"),
                workers=1,
            ),
            metrics={
                "total_seconds": sum(
                    b["build_seconds"] + b["query_seconds"]
                    for b in budgets.values()
                ),
                "budgets": budgets,
            },
            totals=totals,
            meta={**meta, "file": doc["file"]},
        )
    elif schema == "repro.obs/run-report/v1":
        from repro.obs.export import RunReport

        entry = entry_from_run_report(
            RunReport.from_dict(doc), label=label, source="repro.obs.report"
        )
        entry.meta.update(meta)
    else:
        raise ValueError(f"unrecognised bench schema {schema!r}")

    if inflate != 1.0:
        entry.metrics = _scale_seconds(entry.metrics, inflate)
    return entry


# -- CLI --------------------------------------------------------------------


def _format_log(
    entries: Sequence[LedgerEntry], fmt: str = "text"
) -> str:
    if fmt == "markdown":
        lines = [
            "| run | when | label | fingerprint | total_s |",
            "| --- | --- | --- | --- | ---: |",
        ]
        for e in entries:
            total = f"{e.total_seconds:.3f}" if e.total_seconds is not None else "-"
            lines.append(
                f"| `{e.run_id}` | {e.timestamp} | {e.label} "
                f"| `{e.digest}` | {total} |"
            )
        return "\n".join(lines)
    lines = [
        f"{'run':14s}{'when':22s}{'label':28s}{'fingerprint':18s}{'total_s':>9s}"
    ]
    for e in entries:
        total = f"{e.total_seconds:.3f}" if e.total_seconds is not None else "-"
        lines.append(
            f"{e.run_id:14s}{e.timestamp:22s}{e.label[:26]:28s}"
            f"{e.digest:18s}{total:>9s}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.ledger",
        description="Record, inspect and gate the performance ledger.",
    )
    parser.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="ledger file (default: REPRO_LEDGER or results/LEDGER.jsonl)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("record", help="append a run derived from a bench JSON")
    p.add_argument("bench", metavar="FILE", help="bench JSON or run report")
    p.add_argument("--label", default=None)
    p.add_argument(
        "--inflate",
        type=float,
        default=1.0,
        metavar="FACTOR",
        help="multiply every *_seconds metric (synthetic-regression testing)",
    )

    p = sub.add_parser("log", help="print the recorded trajectory")
    p.add_argument("--limit", type=int, default=20)
    p.add_argument("--format", choices=("text", "markdown"), default="text")

    p = sub.add_parser("baseline", help="pin or show per-fingerprint baselines")
    p.add_argument("action", choices=("set", "show"))
    p.add_argument("run", nargs="?", default=None)

    p = sub.add_parser("compare", help="diff two runs of the same fingerprint")
    p.add_argument("old")
    p.add_argument("new")
    p.add_argument("--format", choices=("text", "markdown"), default="text")

    p = sub.add_parser("gate", help="fail on regressions vs same-fingerprint history")
    p.add_argument("--run", default=None, help="candidate run id (default: latest)")
    p.add_argument("--max-regression", type=float, default=25.0, metavar="PCT")
    p.add_argument("--window", type=int, default=5)
    p.add_argument("--format", choices=("text", "markdown"), default="text")

    args = parser.parse_args(argv)
    env_ledger = ledger_from_env()
    ledger = (
        Ledger(args.ledger)
        if args.ledger
        else env_ledger if env_ledger is not None else Ledger()
    )

    if args.command == "record":
        try:
            doc = json.loads(Path(args.bench).read_text(encoding="utf-8"))
            entry = entry_from_bench_document(
                doc, path=args.bench, label=args.label, inflate=args.inflate
            )
        except (OSError, json.JSONDecodeError, ValueError, KeyError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        ledger.record(entry)
        print(
            f"recorded {entry.run_id} ({entry.label}, fingerprint "
            f"{entry.digest}) -> {ledger.path}"
        )
        return 0

    if args.command == "log":
        entries, problems = ledger.read()
        for problem in problems:
            print(f"warning: skipped malformed {problem}", file=sys.stderr)
        if not entries:
            print(f"ledger {ledger.path} is empty")
            return 0
        print(_format_log(entries[-args.limit :], args.format))
        return 0

    if args.command == "baseline":
        if args.action == "show":
            baselines = ledger.baselines()
            if not baselines:
                print("no baselines pinned")
                return 0
            for digest, info in sorted(baselines.items()):
                print(f"{digest}  {info['run']}  {info.get('label', '')}")
            return 0
        if not args.run:
            parser.error("baseline set needs a run id")
        try:
            entry = ledger.set_baseline(args.run)
        except KeyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"baseline for {entry.digest} -> {entry.run_id} ({entry.label})")
        return 0

    if args.command == "compare":
        try:
            rows = compare_entries(ledger.get(args.old), ledger.get(args.new))
        except FingerprintMismatch as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except KeyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(format_metric_rows(rows, fmt=args.format))
        return 0

    # gate
    try:
        result = gate_run(
            ledger,
            run_id=args.run,
            max_regression=args.max_regression,
            window=args.window,
        )
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for note in result.notes:
        print(note)
    if result.rows:
        print(format_metric_rows(result.rows, args.max_regression, args.format))
    for failure in result.failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if result.ok:
        print("gate: OK")
        return 0
    return 2


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Piped into head & co. — close stdout quietly instead of a traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        raise SystemExit(1)
