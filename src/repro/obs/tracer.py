"""Operation-scoped tracing of page accesses.

A :class:`Tracer` implements the :class:`~repro.storage.pagestore.PageStore`
observer protocol (:class:`StoreObserver`): the store calls
``on_operation_begin`` whenever an access method brackets a new
insert/delete/query, and ``on_access`` for *every* page touch — charged
or free (pinned, path-buffered, write-deduplicated).  The tracer rolls
these into one :class:`Span` per operation, labelled with the structure
and operation currently set via :meth:`Tracer.set_context`.

The default span only accumulates counters (a handful of integer adds
per access); pass ``record_events=True`` to keep the individual
:class:`AccessEvent` records, e.g. for a JSONL trace dump.  Observation
never changes charging decisions, so a traced run reports exactly the
same :class:`~repro.core.stats.AccessStats` as an untraced one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

from repro.core.stats import AccessStats
from repro.storage.page import PageKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.storage.pagestore import PageStore

__all__ = [
    "AccessEvent",
    "BUILD_OPS",
    "Span",
    "StoreObserver",
    "Tracer",
    "phase_of",
]

#: Operation labels that belong to the build phase.  ``""`` covers
#: accesses outside any labelled context (implicit setup spans).
BUILD_OPS = frozenset({"", "setup", "insert", "pack"})


def phase_of(op: str) -> str:
    """``"build"`` or ``"query"`` — the phase an operation label bills to.

    Drivers time each structure with two timers (``<name>/build`` and
    ``<name>/queries``); this is the span-side classification that lets
    the profiler apportion those timers back onto operations.
    """
    return "build" if op in BUILD_OPS else "query"


@dataclass(frozen=True)
class AccessEvent:
    """One page touch, as seen by the store.

    ``charged`` is whether the touch counted as a disk access; ``reason``
    explains a free touch (``pinned``, ``buffered`` — already read this
    operation, ``path`` — on the previous operation's buffered search
    path, ``dedup`` — page already written this operation) or is
    ``charged`` for a counted one.
    """

    pid: int
    kind: str  # "data" | "dir"
    rw: str  # "read" | "write"
    charged: bool
    reason: str

    def as_dict(self) -> dict:
        return {
            "pid": self.pid,
            "kind": self.kind,
            "rw": self.rw,
            "charged": self.charged,
            "reason": self.reason,
        }


@dataclass
class Span:
    """Aggregated accesses of one bracketed operation.

    ``index`` numbers the operations within one ``(structure, op)``
    context, so the i-th query of a query file can be identified in a
    trace dump.
    """

    structure: str
    op: str
    index: int
    data_reads: int = 0
    data_writes: int = 0
    dir_reads: int = 0
    dir_writes: int = 0
    free_accesses: int = 0
    events: list[AccessEvent] | None = None

    @property
    def reads(self) -> int:
        return self.data_reads + self.dir_reads

    @property
    def writes(self) -> int:
        return self.data_writes + self.dir_writes

    @property
    def accesses(self) -> int:
        """Charged page accesses — the paper's cost of this operation."""
        return self.reads + self.writes

    def stats(self) -> AccessStats:
        """The span's charged accesses as an :class:`AccessStats`."""
        return AccessStats(
            self.data_reads, self.data_writes, self.dir_reads, self.dir_writes
        )

    def as_dict(self) -> dict:
        out = {
            "structure": self.structure,
            "op": self.op,
            "index": self.index,
            "data_reads": self.data_reads,
            "data_writes": self.data_writes,
            "dir_reads": self.dir_reads,
            "dir_writes": self.dir_writes,
            "free_accesses": self.free_accesses,
            "accesses": self.accesses,
        }
        if self.events is not None:
            out["events"] = [e.as_dict() for e in self.events]
        return out


class StoreObserver(Protocol):
    """What a :class:`~repro.storage.pagestore.PageStore` observer provides."""

    def on_operation_begin(self, store: "PageStore") -> None: ...

    def on_access(
        self,
        store: "PageStore",
        pid: int,
        kind: PageKind,
        rw: str,
        charged: bool,
        reason: str,
    ) -> None: ...


class Tracer:
    """Collect one :class:`Span` per store operation.

    Parameters
    ----------
    record_events:
        Keep every :class:`AccessEvent` inside its span (heavier; off by
        default, where spans only carry counters).
    sink:
        Optional object with a ``write_span(span)`` method (e.g.
        :class:`repro.obs.export.JsonlTraceSink`); each span is streamed
        to it the moment it closes.
    """

    def __init__(self, record_events: bool = False, sink=None):
        self.record_events = record_events
        self.sink = sink
        self._spans: list[Span] = []
        self._open: Span | None = None
        self._structure = ""
        self._op = ""
        self._op_counts: dict[tuple[str, str], int] = {}

    # -- labelling ---------------------------------------------------------

    def set_context(self, structure: str | None = None, op: str | None = None) -> "Tracer":
        """Label subsequent spans; closes any span still open.

        Experiment drivers call ``set_context(structure=name)`` before
        running a structure and ``set_context(op=label)`` before each
        operation loop; the access methods themselves stay unaware of
        the tracer.
        """
        self._close()
        if structure is not None:
            self._structure = structure
        if op is not None:
            self._op = op
        return self

    def attach(self, store: "PageStore") -> "Tracer":
        """Install this tracer as ``store``'s observer and return it."""
        store.observer = self
        return self

    # -- StoreObserver protocol --------------------------------------------

    def on_operation_begin(self, store: "PageStore") -> None:
        self._close()
        key = (self._structure, self._op)
        index = self._op_counts.get(key, 0)
        self._op_counts[key] = index + 1
        self._open = Span(
            self._structure,
            self._op,
            index,
            events=[] if self.record_events else None,
        )

    def on_access(
        self,
        store: "PageStore",
        pid: int,
        kind: PageKind,
        rw: str,
        charged: bool,
        reason: str,
    ) -> None:
        span = self._open
        if span is None:
            # An access outside any operation bracket (setup, audits):
            # open an implicit span so nothing goes unaccounted.
            self.on_operation_begin(store)
            span = self._open
        if charged:
            if rw == "read":
                if kind is PageKind.DATA:
                    span.data_reads += 1
                else:
                    span.dir_reads += 1
            else:
                if kind is PageKind.DATA:
                    span.data_writes += 1
                else:
                    span.dir_writes += 1
        else:
            span.free_accesses += 1
        if span.events is not None:
            span.events.append(
                AccessEvent(
                    pid,
                    "data" if kind is PageKind.DATA else "dir",
                    rw,
                    charged,
                    reason,
                )
            )

    # -- results -----------------------------------------------------------

    def _close(self) -> None:
        if self._open is not None:
            self._spans.append(self._open)
            if self.sink is not None:
                self.sink.write_span(self._open)
            self._open = None

    def finish(self) -> list[Span]:
        """Close any open span and return all recorded spans."""
        self._close()
        return self._spans

    def stats(self) -> AccessStats:
        """Total charged accesses over all spans recorded so far."""
        total = AccessStats()
        spans = self._spans if self._open is None else [*self._spans, self._open]
        for span in spans:
            total.data_reads += span.data_reads
            total.data_writes += span.data_writes
            total.dir_reads += span.dir_reads
            total.dir_writes += span.dir_writes
        return total
