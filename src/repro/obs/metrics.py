"""Counters, histograms and timers for the testbed.

The registry follows the usual metrics vocabulary: a :class:`Counter`
is a monotone total, a :class:`Histogram` buckets observations into
fixed upper bounds *and* retains the raw samples so the percentile
summaries (p50/p90/p99/max) are exact rather than bucket-interpolated
— the runs here observe at most a few hundred thousand small integers,
so exactness is cheap.  A :class:`Timer` accumulates wall-clock seconds.

All objects are JSON-friendly via ``as_dict`` so they can be embedded
in a :class:`repro.obs.export.RunReport`.
"""

from __future__ import annotations

import math
import time

__all__ = [
    "DEFAULT_ACCESS_BUCKETS",
    "LATENCY_BUCKETS_SECONDS",
    "SIZE_BUCKETS_BYTES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
]

#: Power-of-two upper bounds for page-access histograms: queries cost a
#: handful of accesses at laptop scale and a few thousand at the paper's
#: 100 000 records, so a geometric ladder keeps every regime resolved.
DEFAULT_ACCESS_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)

#: A 1-2.5-5 decade ladder from one microsecond to ten seconds, for
#: physical-IO latencies.  :data:`DEFAULT_ACCESS_BUCKETS` counts page
#: accesses and resolves nothing below 1, which is useless for timings:
#: a cached ``pread`` lands around 1-10 µs, a WAL ``fsync`` anywhere
#: from ~50 µs (battery-backed cache) to tens of milliseconds (spinning
#: disk), and a checkpoint can take whole seconds.  Three buckets per
#: decade keeps every one of those regimes distinguishable without
#: inflating export size.
LATENCY_BUCKETS_SECONDS = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

#: Power-of-four byte sizes from one sector to 64 MiB, for transfer and
#: log-growth histograms (WAL appends, slot writes, checkpoint flushes).
SIZE_BUCKETS_BYTES = (
    256, 1024, 4096, 16384, 65536,
    262144, 1048576, 4194304, 16777216, 67108864,
)


class Counter:
    """A named monotone counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def as_dict(self) -> dict:
        return {"value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A point-in-time value: set directly, or computed by a callback.

    Callback gauges (``Gauge("pool.resident", fn=lambda: len(frames))``)
    cost nothing on the hot path — the value is only computed when the
    gauge is *read* (by the flight recorder's sampling loop or an
    export), which is the trick real metrics systems use to watch a
    buffer pool without instrumenting every admission and eviction.
    """

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str, fn=None):
        self.name = name
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is computed by a callback")
        self._value = float(value)

    def set_function(self, fn) -> None:
        """(Re)bind the callback; the latest binding wins."""
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def as_dict(self) -> dict:
        return {"value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Fixed-bucket histogram with exact percentile summaries.

    ``buckets`` are inclusive upper bounds; one overflow bucket
    (``+Inf``) is always appended.  Observations are also kept verbatim
    (sorted lazily) so :meth:`percentile` is the exact nearest-rank
    statistic.
    """

    __slots__ = ("name", "buckets", "bucket_counts", "_samples", "_sorted")

    def __init__(self, name: str, buckets: tuple[float, ...] = DEFAULT_ACCESS_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.buckets = tuple(buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self._samples: list[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        """Record one observation."""
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                break
        else:
            self.bucket_counts[-1] += 1
        if self._samples and value < self._samples[-1]:
            self._sorted = False
        self._samples.append(value)

    # -- summary statistics ----------------------------------------------

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def sum(self) -> float:
        return sum(self._samples)

    @property
    def min(self) -> float:
        return min(self._samples) if self._samples else 0.0

    @property
    def max(self) -> float:
        return max(self._samples) if self._samples else 0.0

    @property
    def mean(self) -> float:
        return self.sum / self.count if self._samples else 0.0

    def percentile(self, q: float) -> float:
        """Exact nearest-rank percentile, ``q`` in [0, 100]."""
        if not 0 <= q <= 100:
            raise ValueError("q must be between 0 and 100")
        if not self._samples:
            return 0.0
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        rank = max(1, math.ceil(q / 100.0 * len(self._samples)))
        return self._samples[rank - 1]

    def summary(self) -> dict:
        """The scalar summary embedded in run reports."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def as_dict(self) -> dict:
        out = self.summary()
        bounds = [*map(float, self.buckets), math.inf]
        out["buckets"] = [
            {"le": "+Inf" if math.isinf(le) else le, "count": n}
            for le, n in zip(bounds, self.bucket_counts)
        ]
        return out

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.2f})"


class Timer:
    """Accumulating wall-clock timer, usable as a context manager."""

    __slots__ = ("name", "seconds", "count", "_started")

    def __init__(self, name: str):
        self.name = name
        self.seconds = 0.0
        self.count = 0
        self._started: float | None = None

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds += time.perf_counter() - self._started
        self.count += 1
        self._started = None

    def as_dict(self) -> dict:
        return {"seconds": self.seconds, "count": self.count}

    def __repr__(self) -> str:
        return f"Timer({self.name!r}, seconds={self.seconds:.4f}, count={self.count})"


class MetricsRegistry:
    """Get-or-create registry of counters, histograms and timers."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._timers: dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            counter = self._counters[name] = Counter(name)
            return counter

    def gauge(self, name: str, fn=None) -> Gauge:
        """Get or create a gauge; a non-``None`` ``fn`` rebinds it."""
        try:
            gauge = self._gauges[name]
        except KeyError:
            gauge = self._gauges[name] = Gauge(name, fn)
            return gauge
        if fn is not None:
            gauge.set_function(fn)
        return gauge

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_ACCESS_BUCKETS
    ) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            histogram = self._histograms[name] = Histogram(name, buckets)
            return histogram

    def timer(self, name: str) -> Timer:
        try:
            return self._timers[name]
        except KeyError:
            timer = self._timers[name] = Timer(name)
            return timer

    def timers(self) -> dict[str, Timer]:
        """A snapshot of all registered timers by name."""
        return dict(self._timers)

    def counters(self) -> dict[str, Counter]:
        """A snapshot of all registered counters by name."""
        return dict(self._counters)

    def gauges(self) -> dict[str, Gauge]:
        """A snapshot of all registered gauges by name."""
        return dict(self._gauges)

    def histograms(self) -> dict[str, Histogram]:
        """A snapshot of all registered histograms by name."""
        return dict(self._histograms)

    def as_dict(self) -> dict:
        out = {
            "counters": {n: c.as_dict() for n, c in sorted(self._counters.items())},
            "histograms": {n: h.as_dict() for n, h in sorted(self._histograms.items())},
            "timers": {n: t.as_dict() for n, t in sorted(self._timers.items())},
        }
        if self._gauges:
            out["gauges"] = {
                n: g.as_dict() for n, g in sorted(self._gauges.items())
            }
        return out

    def render(self) -> str:
        """A human-readable dump of every registered metric."""
        lines: list[str] = []
        if self._counters:
            lines.append(f"{'counter':40s}{'value':>12s}")
            for name, counter in sorted(self._counters.items()):
                lines.append(f"{name:40s}{counter.value:>12d}")
        if self._gauges:
            lines.append(f"{'gauge':40s}{'value':>12s}")
            for name, gauge in sorted(self._gauges.items()):
                lines.append(f"{name:40s}{gauge.value:>12.4g}")
        if self._histograms:
            header = (
                f"{'histogram':40s}{'count':>8s}{'mean':>10s}"
                f"{'p50':>8s}{'p90':>8s}{'p99':>8s}{'max':>8s}"
            )
            lines.append(header)
            for name, hist in sorted(self._histograms.items()):
                lines.append(
                    f"{name:40s}{hist.count:>8d}{hist.mean:>10.2f}"
                    f"{hist.percentile(50):>8.0f}{hist.percentile(90):>8.0f}"
                    f"{hist.percentile(99):>8.0f}{hist.max:>8.0f}"
                )
        if self._timers:
            lines.append(f"{'timer':40s}{'seconds':>12s}{'count':>8s}")
            for name, timer in sorted(self._timers.items()):
                lines.append(f"{name:40s}{timer.seconds:>12.4f}{timer.count:>8d}")
        return "\n".join(lines)
