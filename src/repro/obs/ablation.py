"""Schema-validated ablation artefacts.

The ablation benches historically emitted fixed-width text tables only
(``results/ABL-*.txt``).  This module gives the redundancy sweep — the
bench closest to the source paper's subject — a machine-readable
counterpart: a versioned JSON document carrying, per redundancy budget,
the achieved duplication factor straight from the structure snapshot
(:mod:`repro.obs.structure`), the measured query costs and the build
shape.  :func:`repro.obs.ledger.entry_from_bench_document` understands
the schema, so the document records into the performance ledger and its
redundancy numbers are gated for drift like access totals.
"""

from __future__ import annotations

from typing import Mapping

__all__ = [
    "CLIP_REDUNDANCY_SCHEMA",
    "build_clip_redundancy_document",
    "validate_clip_redundancy",
]

#: Schema identifier of the clipping redundancy-sweep document.
CLIP_REDUNDANCY_SCHEMA = "repro.obs/clip-redundancy/v1"

#: Numeric fields every sweep row must carry.
_ROW_KEYS = (
    "budget",
    "regions_per_object",
    "point_cost",
    "data_pages",
    "build_seconds",
    "query_seconds",
)


def build_clip_redundancy_document(
    *,
    file: str,
    scale: int,
    page_size: int,
    seed: int | None,
    rows: list[dict],
) -> dict:
    """Assemble a sweep document; raises ``ValueError`` when malformed."""
    doc = {
        "schema": CLIP_REDUNDANCY_SCHEMA,
        "file": file,
        "scale": scale,
        "page_size": page_size,
        "seed": seed,
        "rows": rows,
    }
    problems = validate_clip_redundancy(doc)
    if problems:
        raise ValueError(
            "invalid clip-redundancy document: " + "; ".join(problems)
        )
    return doc


def validate_clip_redundancy(data: object) -> list[str]:
    """Shape-check a sweep document; returns problems ([] when valid)."""
    problems: list[str] = []
    if not isinstance(data, Mapping):
        return ["document is not a JSON object"]
    if data.get("schema") != CLIP_REDUNDANCY_SCHEMA:
        problems.append(
            f"schema is {data.get('schema')!r}, "
            f"expected {CLIP_REDUNDANCY_SCHEMA!r}"
        )
    for key, types in (
        ("file", str),
        ("scale", int),
        ("page_size", int),
    ):
        if not isinstance(data.get(key), types):
            problems.append(f"missing or mistyped field {key!r}")
    rows = data.get("rows")
    if not isinstance(rows, list) or not rows:
        return problems + ["missing, mistyped or empty field 'rows'"]
    budgets = []
    for i, row in enumerate(rows):
        where = f"rows[{i}]"
        if not isinstance(row, Mapping):
            problems.append(f"{where} is not an object")
            continue
        for key in _ROW_KEYS:
            value = row.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"{where}.{key} missing or mistyped")
        if not isinstance(row.get("redundancy"), Mapping):
            problems.append(f"{where}.redundancy missing (snapshot block)")
        if isinstance(row.get("budget"), int):
            budgets.append(row["budget"])
    if budgets != sorted(budgets):
        problems.append("rows are not sorted by budget")
    return problems
