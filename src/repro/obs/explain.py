"""EXPLAIN-style per-query execution traces.

An *explain trace* records how one query descended through a built
structure: the directory and data pages visited in order, per-page
candidate counts versus predicate hits (in-page selectivity), the
directory children pruned at each visited page, and the duplicate
results eliminated by a redundant scheme (clipping, R+) on the way out.

Recording is opt-in and strictly additive.  An :class:`ExplainRecorder`
chains the store's existing observer (usually the
:class:`~repro.obs.tracer.Tracer`), so it sees the *identical* event
stream that feeds :class:`~repro.core.stats.AccessStats` — the charged
events of a query's trace therefore sum bit-identically to the measured
cost of that query, and :meth:`ExplainRecorder.end_file` asserts it.
Candidate/hit counts are computed after the fact from uncharged page
peeks, so explaining a run never changes its access statistics.

The trace document (schema ``repro.obs/explain/v1``) is rendered by the
``python -m repro.obs.explain`` CLI as an ASCII descent tree, markdown
or JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.stats import AccessStats
from repro.geometry.rect import Rect
from repro.storage.page import PageKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.pagestore import PageStore

__all__ = [
    "EXPLAIN_SCHEMA",
    "ExplainRecorder",
    "data_page_entries",
    "page_heatmap",
    "render_heatmap",
    "render_trace",
    "validate_explain",
    "main",
]

#: Schema identifier embedded in every explain trace.
EXPLAIN_SCHEMA = "repro.obs/explain/v1"

#: Query kinds whose predicate matches stored *points* against a box.
_POINT_KINDS = frozenset({"range", "pm"})

#: SAM query kind -> predicate tag over (stored rect, query rect).
_RECT_OPS = {
    "point": "encl",
    "intersection": "isect",
    "containment": "within",
    "enclosure": "encl",
}

_RECT_PRED = {
    "isect": lambda r, q: r.intersects(q),
    "within": lambda r, q: q.contains_rect(r),
    "encl": lambda r, q: r.contains_rect(q),
}


@dataclass
class _Event:
    """One observed page touch (flat; sliced per query afterwards)."""

    pid: int
    kind: str  # "data" | "dir"
    rw: str  # "read" | "write"
    charged: bool


@dataclass
class _QueryRecord:
    """One executed query, before page-graph finalisation."""

    index: int
    query: object
    events: list[_Event]
    cost: int
    result_count: int


class _Collector:
    """Chained :class:`~repro.obs.tracer.StoreObserver` feeding a recorder.

    Delegates both callbacks to the observer it replaced (so a tracer
    keeps its spans) and accumulates a flat event list with operation
    boundaries.  Observation never changes charging decisions.
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.events: list[_Event] = []

    def on_operation_begin(self, store: "PageStore") -> None:
        if self.inner is not None:
            self.inner.on_operation_begin(store)

    def on_access(
        self,
        store: "PageStore",
        pid: int,
        kind: PageKind,
        rw: str,
        charged: bool,
        reason: str,
    ) -> None:
        if self.inner is not None:
            self.inner.on_access(store, pid, kind, rw, charged, reason)
        self.events.append(
            _Event(pid, "data" if kind is PageKind.DATA else "dir", rw, charged)
        )

    def drain(self) -> list[_Event]:
        out = self.events
        self.events = []
        return out


def data_page_entries(obj) -> list | None:
    """The ``(geometry, rid)`` entries stored on a data page, or ``None``.

    Covers every leaf shape in the repro: plain record pages
    (``.records``), B+-tree leaves (``.keys``/``.values``), R+-tree
    leaves (``.rects``/``.rids``) and R-tree leaves
    (``.rects``/``.children``).
    """
    if obj is None:
        return None
    if hasattr(obj, "records"):
        return list(obj.records)
    if hasattr(obj, "keys") and hasattr(obj, "values"):
        return list(obj.values)
    if hasattr(obj, "rids") and hasattr(obj, "rects"):
        return list(zip(obj.rects, obj.rids))
    if hasattr(obj, "children") and hasattr(obj, "rects"):
        return list(zip(obj.rects, obj.children))
    return None


def _query_rect(method, kind: str, query) -> Rect:
    """The box the *final* predicate compares against, per query kind."""
    if kind in _POINT_KINDS:
        # Same conversion the driver registers for the scan kernels.
        return method._workload_rects(kind, [query])[0]
    if kind == "point":
        return Rect.from_point(tuple(float(c) for c in query))
    return query


def _page_hits(method, kind: str, entries: list, qrect: Rect) -> int:
    """Entries on one data page satisfying the query's final predicate."""
    if kind in _POINT_KINDS:
        return sum(1 for geom, _ in entries if qrect.contains_point(geom))
    pred = _RECT_PRED[_RECT_OPS[kind]]
    to_rect = getattr(method, "_to_rect", None)
    hits = 0
    for geom, _ in entries:
        if isinstance(geom, Rect):
            rect = geom
        elif to_rect is not None:
            rect = to_rect(geom)
        else:
            continue
        if pred(rect, qrect):
            hits += 1
    return hits


def _query_json(kind: str, query) -> object:
    if kind == "pm":
        return {str(axis): value for axis, value in sorted(query.items())}
    if kind == "point":
        return [float(c) for c in query]
    return {"lo": list(query.lo), "hi": list(query.hi)}


class ExplainRecorder:
    """Collects explain traces for one structure across its query files.

    Pass an instance as ``explain=`` to
    :func:`repro.query.driver.run_query_file` (the comparison drivers
    thread it through).  After the run, :meth:`to_trace` returns the
    versioned trace document and :meth:`save` writes it as JSON.
    """

    def __init__(self, structure: str):
        self.structure = structure
        self.files: list[dict] = []
        self.label: str | None = None
        self._collector: _Collector | None = None
        self._store = None
        self._method = None
        self._kind = ""
        self._records: list[_QueryRecord] = []

    # -- driver hooks (called by run_query_file) --------------------------

    def start_file(self, method, kind: str) -> None:
        if self._collector is not None:
            raise RuntimeError("explain recorder already attached")
        self._method = method
        self._kind = kind
        self._records = []
        self._store = method.store
        self._collector = _Collector(method.store.observer)
        method.store.observer = self._collector

    def finish_query(self, index: int, query, cost: int, result) -> None:
        assert self._collector is not None
        try:
            result_count = len(result)
        except TypeError:
            result_count = 0
        self._records.append(
            _QueryRecord(index, query, self._collector.drain(), cost, result_count)
        )

    def end_file(self) -> None:
        """Detach and finalise this file's traces against the page graph."""
        assert self._collector is not None and self._store is not None
        self._store.observer = self._collector.inner
        method, kind = self._method, self._kind
        records = self._records
        self._collector = None
        self._store = None
        self._method = None
        self._records = []

        from repro.obs.structure import page_parents

        pages = list(method._snapshot_pages())
        parents = page_parents(pages)
        children = {p.pid: p.children for p in pages}
        depths = {p.pid: p.depth for p in pages}

        queries = []
        for record in records:
            queries.append(
                self._finalise(method, kind, record, parents, children, depths)
            )
        self.files.append(
            {"label": self.label or kind, "kind": kind, "queries": queries}
        )
        self.label = None

    # -- finalisation ------------------------------------------------------

    def _finalise(
        self, method, kind: str, record: _QueryRecord, parents, children, depths
    ) -> dict:
        stats = AccessStats()
        visits: dict[int, dict] = {}
        for event in record.events:
            visit = visits.get(event.pid)
            if visit is None:
                visit = visits[event.pid] = {
                    "pid": event.pid,
                    "kind": event.kind,
                    "order": len(visits),
                    "reads": 0,
                    "writes": 0,
                    "free": 0,
                }
            if not event.charged:
                visit["free"] += 1
            elif event.rw == "read":
                visit["reads"] += 1
                if event.kind == "data":
                    stats.data_reads += 1
                else:
                    stats.dir_reads += 1
            else:
                visit["writes"] += 1
                if event.kind == "data":
                    stats.data_writes += 1
                else:
                    stats.dir_writes += 1
        if stats.total != record.cost:
            raise RuntimeError(
                f"explain trace of {self.structure} {kind} #{record.index} "
                f"disagrees with AccessStats: {stats.total} charged events "
                f"vs measured cost {record.cost}"
            )

        qrect = _query_rect(method, kind, record.query)
        candidates_total = 0
        hits_total = 0
        store = method.store
        page_list = []
        for visit in sorted(visits.values(), key=lambda v: v["order"]):
            pid = visit["pid"]
            parent = parents.get(pid)
            visit["parent"] = parent if parent in visits else None
            if pid in depths:
                visit["depth"] = depths[pid]
            if visit["kind"] == "data":
                entries = data_page_entries(store.peek(pid))
                if entries is not None:
                    visit["candidates"] = len(entries)
                    visit["hits"] = _page_hits(method, kind, entries, qrect)
                    candidates_total += visit["candidates"]
                    hits_total += visit["hits"]
            elif pid in children:
                visit["pruned_children"] = sum(
                    1 for child in children[pid] if child not in visits
                )
            # Pages outside the snapshot graph (e.g. freed during the
            # walk window) keep only their access counters.
            page_list.append(visit)

        return {
            "index": record.index,
            "query": _query_json(kind, record.query),
            "cost": stats.as_dict(),
            "accesses": stats.total,
            "free_accesses": sum(v["free"] for v in visits.values()),
            "result_count": record.result_count,
            "candidates": candidates_total,
            "hits": hits_total,
            "duplicates": max(0, hits_total - record.result_count),
            "pages": page_list,
        }

    # -- output ------------------------------------------------------------

    def to_trace(self) -> dict:
        return {
            "schema": EXPLAIN_SCHEMA,
            "structure": self.structure,
            "files": self.files,
        }

    def save(self, path) -> None:
        from pathlib import Path

        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_trace(), indent=2, sort_keys=True))


def validate_explain(data: object) -> list[str]:
    """Shape-check an explain trace; returns problems ([] when valid)."""
    problems: list[str] = []
    if not isinstance(data, dict):
        return ["trace is not a JSON object"]
    if data.get("schema") != EXPLAIN_SCHEMA:
        problems.append(
            f"schema is {data.get('schema')!r}, expected {EXPLAIN_SCHEMA!r}"
        )
    if not isinstance(data.get("structure"), str):
        problems.append("missing or mistyped field 'structure'")
    files = data.get("files")
    if not isinstance(files, list):
        return problems + ["missing or mistyped field 'files'"]
    for fi, file in enumerate(files):
        if not isinstance(file, dict) or not isinstance(file.get("queries"), list):
            problems.append(f"files[{fi}] malformed")
            continue
        for qi, query in enumerate(file["queries"]):
            where = f"files[{fi}].queries[{qi}]"
            if not isinstance(query, dict):
                problems.append(f"{where} is not an object")
                continue
            for key in ("cost", "pages"):
                if key not in query:
                    problems.append(f"{where} missing {key!r}")
            cost = query.get("cost")
            if isinstance(cost, dict) and isinstance(query.get("pages"), list):
                total = sum(
                    page.get("reads", 0) + page.get("writes", 0)
                    for page in query["pages"]
                    if isinstance(page, dict)
                )
                if total != sum(cost.values()):
                    problems.append(
                        f"{where}: page accesses {total} != cost {sum(cost.values())}"
                    )
    return problems


# -- the per-page heatmap ---------------------------------------------------


def page_heatmap(trace: dict) -> list[dict]:
    """Aggregate a trace into one access-heatmap row per visited page.

    Joins the structure geometry already in the trace (page kind and
    directory depth from the snapshot walk) with the access side of the
    explain records: how many queries touched the page, total charged
    reads/writes, free touches, and summed candidates vs hits for data
    pages.  Rows come back hottest-first (by charged touches), ties by
    pid, so the output is deterministic.
    """
    rows: dict[int, dict] = {}
    for file in trace.get("files", []):
        for query in file.get("queries", []):
            for page in query.get("pages", []):
                pid = page["pid"]
                row = rows.get(pid)
                if row is None:
                    row = rows[pid] = {
                        "pid": pid,
                        "kind": page.get("kind", "?"),
                        "depth": page.get("depth"),
                        "queries": 0,
                        "reads": 0,
                        "writes": 0,
                        "free": 0,
                        "candidates": 0,
                        "hits": 0,
                    }
                if row["depth"] is None and page.get("depth") is not None:
                    row["depth"] = page["depth"]
                row["queries"] += 1
                row["reads"] += page.get("reads", 0)
                row["writes"] += page.get("writes", 0)
                row["free"] += page.get("free", 0)
                row["candidates"] += page.get("candidates", 0)
                row["hits"] += page.get("hits", 0)
    return sorted(
        rows.values(), key=lambda r: (-(r["reads"] + r["writes"]), r["pid"])
    )


def render_heatmap(trace: dict) -> str:
    """Fixed-width table of :func:`page_heatmap` rows, hottest first."""
    rows = page_heatmap(trace)
    lines = [
        f"page heatmap: {trace.get('structure', '?')} "
        f"({len(rows)} pages touched)",
        f"{'page':>8s} {'kind':10s}{'depth':>6s}{'queries':>9s}"
        f"{'reads':>7s}{'writes':>7s}{'free':>6s}{'hits/cand':>12s}",
    ]
    for row in rows:
        depth = "-" if row["depth"] is None else str(row["depth"])
        ratio = (
            f"{row['hits']}/{row['candidates']}" if row["candidates"] else "-"
        )
        lines.append(
            f"p{row['pid']:>7d} {row['kind']:10s}{depth:>6s}"
            f"{row['queries']:>9d}{row['reads']:>7d}{row['writes']:>7d}"
            f"{row['free']:>6d}{ratio:>12s}"
        )
    return "\n".join(lines) + "\n"


# -- rendering -------------------------------------------------------------


def _render_query_tree(structure: str, label: str, query: dict) -> list[str]:
    cost = query["cost"]
    lines = [
        f"{structure} {label} #{query['index']} — "
        f"{query['accesses']} accesses ({cost['data_reads']}dr "
        f"{cost['dir_reads']}xr {cost['data_writes']}dw {cost['dir_writes']}xw, "
        f"{query['free_accesses']} free), {query['result_count']} results, "
        f"{query['hits']}/{query['candidates']} hits/candidates, "
        f"{query['duplicates']} duplicates eliminated"
    ]
    pages = query["pages"]
    by_parent: dict[object, list[dict]] = {}
    for page in pages:
        by_parent.setdefault(page.get("parent"), []).append(page)

    def describe(page: dict) -> str:
        bits = [f"{page['kind']} p{page['pid']}"]
        touches = []
        if page["reads"]:
            touches.append(f"reads={page['reads']}")
        if page["writes"]:
            touches.append(f"writes={page['writes']}")
        if page["free"]:
            touches.append(f"free={page['free']}")
        bits.extend(touches)
        if "candidates" in page:
            bits.append(f"hits={page['hits']}/{page['candidates']}")
        if "pruned_children" in page:
            bits.append(f"pruned={page['pruned_children']}")
        return " ".join(bits)

    def walk(parent: object, prefix: str) -> None:
        siblings = by_parent.get(parent, [])
        for i, page in enumerate(siblings):
            last = i == len(siblings) - 1
            lines.append(f"{prefix}{'└─ ' if last else '├─ '}{describe(page)}")
            walk(page["pid"], prefix + ("   " if last else "│  "))

    walk(None, "")
    return lines


def render_trace(trace: dict, fmt: str = "tree") -> str:
    """Render a trace document as ``tree``, ``md`` or ``json`` text."""
    if fmt == "json":
        return json.dumps(trace, indent=2, sort_keys=True)
    structure = trace.get("structure", "?")
    lines: list[str] = []
    if fmt == "tree":
        for file in trace.get("files", []):
            for query in file.get("queries", []):
                lines.extend(_render_query_tree(structure, file["label"], query))
                lines.append("")
        return "\n".join(lines).rstrip("\n") + "\n"
    if fmt == "md":
        lines.append(f"# Explain trace: {structure}")
        for file in trace.get("files", []):
            lines.append("")
            lines.append(f"## {file['label']}")
            lines.append("")
            lines.append(
                "| # | accesses | free | results | hits/candidates "
                "| duplicates | pages |"
            )
            lines.append("|--:|--:|--:|--:|--:|--:|--:|")
            for query in file.get("queries", []):
                lines.append(
                    f"| {query['index']} | {query['accesses']} "
                    f"| {query['free_accesses']} | {query['result_count']} "
                    f"| {query['hits']}/{query['candidates']} "
                    f"| {query['duplicates']} | {len(query['pages'])} |"
                )
        return "\n".join(lines) + "\n"
    raise ValueError(f"unknown format {fmt!r}")


# -- CLI --------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.explain",
        description="Render and validate explain traces "
        "(schema repro.obs/explain/v1).",
    )
    parser.add_argument("trace", help="path to an explain trace JSON file")
    parser.add_argument(
        "--format",
        choices=("tree", "md", "json", "heatmap"),
        default="tree",
        help="output rendering (default: tree)",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="only validate the trace; exit 1 on problems",
    )
    args = parser.parse_args(argv)

    from pathlib import Path

    path = Path(args.trace)
    if not path.exists():
        print(f"error: no such file: {path}", file=sys.stderr)
        return 1
    try:
        trace = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        print(f"error: {path} is not valid JSON: {exc}", file=sys.stderr)
        return 1
    problems = validate_explain(trace)
    if problems:
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        return 1
    if args.validate:
        print(f"{path}: valid ({trace['structure']})")
        return 0
    try:
        if args.format == "heatmap":
            print(render_heatmap(trace), end="")
        else:
            print(render_trace(trace, args.format), end="")
    except BrokenPipeError:
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
