"""Structure snapshots: occupancy, shape and redundancy metrics.

A *snapshot* is a versioned, JSON-serialisable summary of one built
access method's page layout — occupancy histograms, directory depth and
fanout distributions, and the redundancy quantities the source paper is
named for: the clipping duplication factor, the summed overlap volume
of sibling directory regions, dead space inside data-page regions, and
per-level storage utilisation.

Every structure contributes a ``_snapshot_pages()`` walk yielding
:class:`PageView` records.  The walk uses only the page store's
uncharged audit accessors (:meth:`~repro.storage.pagestore.PageStore.peek`
and friends), so taking a snapshot never perturbs access counters or
the search-path buffer — :func:`compute_snapshot` verifies this and
raises if a walk charged anything.

Metric definitions (all volumes are d-dimensional, in the unit cube):

``duplication_factor``
    Physically stored data entries divided by logical records.  1.0 for
    one-place schemes; the clipping SAM's redundancy shows up directly.
``overlap_volume``
    Sum over directory pages of the pairwise intersection volumes of
    their entries' regions.  0.0 for disjoint partitioning schemes;
    positive for the R-tree family.
``dead_space``
    Sum over data pages of ``max(0, vol(regions) - vol(MBR of
    contents))`` — region volume not needed to bound the stored data.
    Exact-MBR schemes (BUDDY, the R-tree) report ~0; cell-partitioning
    schemes (GRID, KDB) report their unused region volume.
``coverage``
    Summed volume of all data-page regions.  For disjoint in-universe
    partitions this is the covered fraction of the data space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.geometry.rect import Rect

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.interfaces import _AccessMethodBase

__all__ = [
    "SNAPSHOT_SCHEMA",
    "PageView",
    "compute_snapshot",
    "snapshot_to_json",
    "validate_snapshot",
    "page_parents",
    "render_snapshot",
]

#: Schema identifier embedded in every snapshot.
SNAPSHOT_SCHEMA = "repro.obs/structure/v1"

#: Decimal places kept on every float in a snapshot, so re-serialised
#: snapshots are byte-identical across runs and worker counts.
_ROUND = 10

#: Occupancy histogram bucket labels (percent of capacity, deciles).
_OCCUPANCY_BUCKETS = tuple(
    f"{lo}-{lo + 10}" for lo in range(0, 100, 10)
) + (">100",)


@dataclass(frozen=True)
class PageView:
    """One page as seen by a structure's snapshot walk.

    ``regions`` are the region(s) the directory assigns to this page
    (shared pages — packed BUDDY — carry one per sharing entry; pages
    without a geometric region, e.g. B+-tree nodes, carry none).
    ``records`` counts stored entries: records on a data page, child
    entries on a directory page.  ``capacity`` is the page's entry
    budget, or 0 for byte-budget pages with no fixed slot count.
    ``entry_regions`` are the per-entry regions stored *in* a directory
    page (used for sibling-overlap accounting); ``content`` is the MBR
    of a data page's stored records.
    """

    pid: int
    kind: str  # "data" | "directory"
    depth: int  # 0 = root level
    regions: tuple[Rect, ...]
    records: int
    capacity: int
    children: tuple[int, ...] = ()
    entry_regions: tuple[Rect, ...] = ()
    content: Rect | None = None


def _occupancy_bucket(records: int, capacity: int) -> str:
    if records > capacity:
        return ">100"
    share = records / capacity
    return _OCCUPANCY_BUCKETS[min(9, int(share * 10))]


def _rect_volume(rect: Rect) -> float:
    return rect.area()


def _pairwise_overlap(regions: Sequence[Rect]) -> float:
    total = 0.0
    for i in range(len(regions)):
        for j in range(i + 1, len(regions)):
            common = regions[i].intersection(regions[j])
            if common is not None:
                total += common.area()
    return total


def compute_snapshot(am: "_AccessMethodBase") -> dict:
    """Snapshot one built structure into a plain, JSON-ready dict.

    Walks ``am._snapshot_pages()`` and aggregates.  The walk must be
    uncharged; this function compares the store's counters before and
    after and raises :class:`RuntimeError` on any drift, so a hook that
    accidentally uses ``store.read`` cannot silently skew experiments.
    """
    before = am.store.stats.snapshot()
    pages = list(am._snapshot_pages())
    if am.store.stats != before:
        raise RuntimeError(
            f"{type(am).__name__}._snapshot_pages() charged page accesses; "
            "snapshot walks must use store.peek()"
        )

    data_pages = [p for p in pages if p.kind == "data"]
    dir_pages = [p for p in pages if p.kind == "directory"]

    # -- per-level aggregation -------------------------------------------
    levels: dict[int, dict] = {}
    for page in pages:
        cell = levels.setdefault(
            page.depth,
            {
                "depth": page.depth,
                "data_pages": 0,
                "directory_pages": 0,
                "entries": 0,
                "capacity": 0,
            },
        )
        cell["data_pages" if page.kind == "data" else "directory_pages"] += 1
        cell["entries"] += page.records
        cell["capacity"] += page.capacity
    level_rows = []
    for depth in sorted(levels):
        cell = levels[depth]
        cap = cell["capacity"]
        cell["utilisation"] = round(cell["entries"] / cap, _ROUND) if cap else 0.0
        level_rows.append(cell)

    # -- occupancy histograms --------------------------------------------
    occupancy: dict[str, dict[str, int]] = {}
    for label, group in (("data", data_pages), ("directory", dir_pages)):
        hist = {bucket: 0 for bucket in _OCCUPANCY_BUCKETS}
        seen = False
        for page in group:
            if page.capacity <= 0:
                continue
            hist[_occupancy_bucket(page.records, page.capacity)] += 1
            seen = True
        if seen:
            occupancy[label] = {k: v for k, v in hist.items() if v}

    # -- fanout distribution ---------------------------------------------
    fanouts = [p.records for p in dir_pages]
    fanout = {
        "count": len(fanouts),
        "min": min(fanouts) if fanouts else 0,
        "max": max(fanouts) if fanouts else 0,
        "mean": round(sum(fanouts) / len(fanouts), _ROUND) if fanouts else 0.0,
    }

    # -- redundancy metrics ----------------------------------------------
    stored = sum(p.records for p in data_pages)
    logical = len(am)
    overlap = 0.0
    for page in dir_pages:
        if page.entry_regions:
            overlap += _pairwise_overlap(page.entry_regions)
    dead = 0.0
    coverage = 0.0
    for page in data_pages:
        if not page.regions:
            continue
        vol = sum(_rect_volume(r) for r in page.regions)
        coverage += vol
        if page.content is not None:
            dead += max(0.0, vol - _rect_volume(page.content))
        elif page.records == 0:
            dead += vol
    slots = sum(p.capacity for p in data_pages)
    redundancy = {
        "stored_entries": stored,
        "duplication_factor": round(stored / logical, _ROUND) if logical else 0.0,
        "overlap_volume": round(overlap, _ROUND),
        "dead_space": round(dead, _ROUND),
        "coverage": round(coverage, _ROUND),
        "utilisation": round(stored / slots, _ROUND) if slots else 0.0,
    }

    return {
        "schema": SNAPSHOT_SCHEMA,
        "structure": type(am).__name__,
        "records": logical,
        "height": am.directory_height,
        "pages": {"data": len(data_pages), "directory": len(dir_pages)},
        "pinned_pages": am.store.pinned_count,
        "levels": level_rows,
        "occupancy": occupancy,
        "fanout": fanout,
        "redundancy": redundancy,
    }


def snapshot_to_json(snapshot: dict) -> str:
    """Canonical JSON text of a snapshot (sorted keys, no whitespace).

    Two snapshots of the same build — whatever the worker count or
    cache temperature — must serialise to byte-identical text.
    """
    import json

    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"))


def validate_snapshot(data: object) -> list[str]:
    """Shape-check a snapshot dict; returns problems ([] when valid)."""
    problems: list[str] = []
    if not isinstance(data, dict):
        return ["snapshot is not a JSON object"]
    if data.get("schema") != SNAPSHOT_SCHEMA:
        problems.append(
            f"schema is {data.get('schema')!r}, expected {SNAPSHOT_SCHEMA!r}"
        )
    for key, types in (
        ("structure", str),
        ("records", int),
        ("height", int),
        ("pages", dict),
        ("levels", list),
        ("redundancy", dict),
    ):
        if not isinstance(data.get(key), types):
            problems.append(f"missing or mistyped field {key!r}")
    redundancy = data.get("redundancy")
    if isinstance(redundancy, dict):
        for key in (
            "stored_entries",
            "duplication_factor",
            "overlap_volume",
            "dead_space",
            "coverage",
            "utilisation",
        ):
            if not isinstance(redundancy.get(key), (int, float)):
                problems.append(f"redundancy.{key} missing or mistyped")
    return problems


def page_parents(pages: Iterable[PageView]) -> dict[int, int]:
    """Map child pid -> parent pid from a snapshot walk.

    Shared pages (packed BUDDY, hB-tree index nodes) keep the first
    parent in walk order, which is deterministic.
    """
    parents: dict[int, int] = {}
    for page in pages:
        for child in page.children:
            parents.setdefault(child, page.pid)
    return parents


def render_snapshot(snapshot: dict) -> str:
    """One human-readable block per snapshot."""
    pages = snapshot["pages"]
    red = snapshot["redundancy"]
    lines = [
        f"{snapshot['structure']} — {snapshot['records']} records, "
        f"{pages['data']} data + {pages['directory']} directory pages, "
        f"height {snapshot['height']}",
        f"  redundancy: duplication ×{red['duplication_factor']:.2f}, "
        f"overlap {red['overlap_volume']:.6f}, dead space "
        f"{red['dead_space']:.6f}, coverage {red['coverage']:.4f}, "
        f"utilisation {100.0 * red['utilisation']:.1f}%",
    ]
    for level in snapshot["levels"]:
        lines.append(
            f"  level {level['depth']}: {level['directory_pages']} dir + "
            f"{level['data_pages']} data pages, {level['entries']} entries"
            + (
                f", {100.0 * level['utilisation']:.1f}% full"
                if level["capacity"]
                else ""
            )
        )
    occupancy = snapshot.get("occupancy", {})
    for label, hist in occupancy.items():
        row = ", ".join(f"{bucket}%: {count}" for bucket, count in hist.items())
        lines.append(f"  {label} occupancy: {row}")
    return "\n".join(lines)
