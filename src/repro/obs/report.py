"""The run-report CLI: ``python -m repro.obs.report``.

Usage::

    python -m repro.obs.report RUN.json              # print the summary
    python -m repro.obs.report --validate RUN.json   # schema check only
    python -m repro.obs.report OLD.json NEW.json     # diff two reports
    python -m repro.obs.report OLD.json NEW.json --fail-threshold 5

With one report, prints per-structure build metrics and per-query-type
access distributions (ops, mean, p50/p90/p99, max).  With two reports,
prints per-(structure, query) mean-access deltas — new vs old — and,
when ``--fail-threshold`` is given, exits with status 2 if any mean
regressed by more than that percentage, which is how CI turns the
repo's JSON perf trajectory into a regression gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.export import RunReport, validate_run_report

__all__ = ["diff_reports", "format_diff", "main"]


def diff_reports(old: RunReport, new: RunReport) -> list[dict]:
    """Per-(structure, query) mean-access changes between two reports.

    Each row carries ``structure``, ``label``, ``old``/``new`` mean
    accesses per query and ``delta_pct`` (positive = new is costlier).
    Structures or query types present in only one report are skipped.
    """
    rows: list[dict] = []
    for name in new.structures:
        if name not in old.structures:
            continue
        old_queries = old.structures[name].get("queries", {})
        new_queries = new.structures[name].get("queries", {})
        for label, entry in new_queries.items():
            if label not in old_queries:
                continue
            old_mean = old_queries[label]["accesses"]["mean"]
            new_mean = entry["accesses"]["mean"]
            delta = (
                100.0 * (new_mean - old_mean) / old_mean if old_mean else 0.0
            )
            rows.append(
                {
                    "structure": name,
                    "label": label,
                    "old": old_mean,
                    "new": new_mean,
                    "delta_pct": delta,
                }
            )
    return rows


def format_diff(
    rows: list[dict], threshold: float | None = None, fmt: str = "text"
) -> str:
    """Render a diff table; rows past ``threshold`` %% are flagged.

    ``fmt="markdown"`` emits a pipe table ready to paste into a PR.
    """
    if fmt == "markdown":
        lines = [
            "| structure | query | old | new | delta |",
            "| --- | --- | ---: | ---: | ---: |",
        ]
        for row in rows:
            flag = (
                " **REGRESSION**"
                if threshold is not None and row["delta_pct"] > threshold
                else ""
            )
            lines.append(
                f"| {row['structure']} | {row['label']} | {row['old']:.2f} "
                f"| {row['new']:.2f} | {row['delta_pct']:+.1f}%{flag} |"
            )
        return "\n".join(lines)
    lines = [
        f"{'structure':12s}{'query':14s}{'old':>10s}{'new':>10s}{'delta':>9s}"
    ]
    for row in rows:
        flag = (
            "  REGRESSION"
            if threshold is not None and row["delta_pct"] > threshold
            else ""
        )
        lines.append(
            f"{row['structure']:12s}{row['label']:14s}"
            f"{row['old']:>10.2f}{row['new']:>10.2f}"
            f"{row['delta_pct']:>+8.1f}%{flag}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Print, validate or diff repro run reports.",
    )
    parser.add_argument(
        "reports", nargs="+", metavar="RUN.json", help="one report, or OLD NEW"
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="only check the schema; print OK or the problems",
    )
    parser.add_argument(
        "--fail-threshold",
        type=float,
        default=None,
        metavar="PCT",
        help="with two reports: exit 2 if any query mean regressed more than PCT%%",
    )
    parser.add_argument(
        "--format",
        choices=("text", "markdown"),
        default="text",
        help="table style for render and diff output",
    )
    args = parser.parse_args(argv)
    if len(args.reports) > 2:
        parser.error("expected one report, or two to diff")

    if args.validate:
        status = 0
        for path in args.reports:
            try:
                data = json.loads(Path(path).read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as exc:
                status = 1
                print(f"{path}: UNREADABLE ({exc})")
                continue
            problems = validate_run_report(data)
            if problems:
                status = 1
                print(f"{path}: INVALID")
                for problem in problems:
                    print(f"  - {problem}")
            else:
                print(f"{path}: OK")
        return status

    try:
        loaded = [RunReport.load(path) for path in args.reports]
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if len(loaded) == 1:
        print(loaded[0].render(args.format))
        return 0

    old, new = loaded
    print(f"diff: {args.reports[0]} -> {args.reports[1]}")
    rows = diff_reports(old, new)
    print(format_diff(rows, args.fail_threshold, args.format))
    if args.fail_threshold is not None and any(
        row["delta_pct"] > args.fail_threshold for row in rows
    ):
        print(f"FAIL: regressions above {args.fail_threshold:.1f}%", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
