"""Exporters: JSONL traces, run reports and table rendering.

A :class:`RunReport` is the machine-readable counterpart of the
``results/*.txt`` tables — one JSON document per benchmark run holding,
for every structure, the build metrics, per-operation access
histograms with exact percentiles, wall-clock timings and the final
:class:`~repro.core.stats.AccessStats` totals of the structure's page
store.  Reports are self-describing via ``schema`` =
:data:`RUN_REPORT_SCHEMA`; :func:`validate_run_report` checks the shape
without any third-party schema library.

Report layout (v1)::

    {
      "schema": "repro.obs/run-report/v1",
      "label":  "PAM uniform",
      "kind":   "pam" | "sam",
      "scale":  10000,            # records in the data file
      "page_size": 512,
      "seed":   101,
      "meta":   {...},            # free-form
      "structures": {
        "GRID": {
          "build":   {"metrics": {...BuildMetrics...},
                      "accesses_per_insert": {...histogram...},
                      "seconds": 1.23},
          "queries": {"range_1%": {"accesses": {...histogram...},
                                   "results": 57, "seconds": 0.45}, ...},
          "totals":  {...AccessStats...}   # whole build+query run
        }, ...
      }
    }
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, Mapping

from repro.core.stats import AccessStats
from repro.obs.metrics import DEFAULT_ACCESS_BUCKETS, Histogram
from repro.obs.tracer import BUILD_OPS, Span

__all__ = [
    "RUN_REPORT_SCHEMA",
    "JsonlTraceSink",
    "RunReport",
    "build_run_report",
    "profile_to_collapsed",
    "profile_to_speedscope",
    "summarise_spans",
    "summarise_touches",
    "validate_run_report",
]

#: Schema identifier embedded in every report.
RUN_REPORT_SCHEMA = "repro.obs/run-report/v1"


class JsonlTraceSink:
    """Stream spans to a file, one JSON object per line.

    Usable directly as the ``sink`` of a :class:`repro.obs.tracer.Tracer`
    and as a context manager::

        with JsonlTraceSink(path) as sink:
            tracer = Tracer(record_events=True, sink=sink)
            ...

    Writes are atomic at the whole-file level: spans stream to a
    sibling temp file which only replaces ``path`` on :meth:`close`, so
    an interrupted run never leaves a torn trace where a previous
    complete one stood.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=f"{self.path.name}.", suffix=".tmp"
        )
        self._tmp = Path(tmp_name)
        self._fh: IO[str] | None = os.fdopen(fd, "w", encoding="utf-8")
        self.spans_written = 0

    def write_span(self, span: Span) -> None:
        if self._fh is None:
            raise ValueError("sink is closed")
        self._fh.write(json.dumps(span.as_dict(), separators=(",", ":")) + "\n")
        self.spans_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
            os.replace(self._tmp, self.path)

    def abort(self) -> None:
        """Discard the temp file without touching ``path``."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
            try:
                os.unlink(self._tmp)
            except OSError:
                pass

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()


def summarise_spans(
    spans: Iterable[Span],
    buckets: tuple[float, ...] = DEFAULT_ACCESS_BUCKETS,
) -> dict[str, dict[str, Histogram]]:
    """Histogram of charged accesses per operation: structure -> op -> h."""
    out: dict[str, dict[str, Histogram]] = {}
    for span in spans:
        per_op = out.setdefault(span.structure, {})
        hist = per_op.get(span.op)
        if hist is None:
            hist = per_op[span.op] = Histogram(
                f"{span.structure}/{span.op}/accesses", buckets
            )
        hist.observe(span.accesses)
    return out


def summarise_touches(spans: Iterable[Span]) -> dict[str, dict[str, dict]]:
    """Exact per-operation touch counters: structure -> op -> summary.

    Each summary carries the four charged counters, the free (uncharged)
    touch count and the number of operations — everything the profiler
    needs to rebuild a :class:`~repro.obs.profile.CostAttribution` from
    a saved report without the original span stream.
    """
    out: dict[str, dict[str, dict]] = {}
    for span in spans:
        per_op = out.setdefault(span.structure, {})
        cell = per_op.get(span.op)
        if cell is None:
            cell = per_op[span.op] = {
                "operations": 0,
                "data_reads": 0,
                "data_writes": 0,
                "dir_reads": 0,
                "dir_writes": 0,
                "charged": 0,
                "free": 0,
            }
        cell["operations"] += 1
        cell["data_reads"] += span.data_reads
        cell["data_writes"] += span.data_writes
        cell["dir_reads"] += span.dir_reads
        cell["dir_writes"] += span.dir_writes
        cell["charged"] += span.accesses
        cell["free"] += span.free_accesses
    return out


@dataclass
class RunReport:
    """A structured, versioned record of one benchmark run."""

    label: str
    kind: str
    scale: int
    page_size: int
    seed: int | None
    structures: dict[str, dict]
    meta: dict = field(default_factory=dict)
    schema: str = RUN_REPORT_SCHEMA

    # -- (de)serialisation -------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "label": self.label,
            "kind": self.kind,
            "scale": self.scale,
            "page_size": self.page_size,
            "seed": self.seed,
            "meta": self.meta,
            "structures": self.structures,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunReport":
        problems = validate_run_report(data)
        if problems:
            raise ValueError("invalid run report: " + "; ".join(problems))
        return cls(
            label=data["label"],
            kind=data["kind"],
            scale=data["scale"],
            page_size=data["page_size"],
            seed=data.get("seed"),
            structures=data["structures"],
            meta=data.get("meta", {}),
            schema=data["schema"],
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunReport":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    # -- convenience accessors --------------------------------------------

    def totals(self, structure: str) -> AccessStats:
        """The structure's final page-store counters, as AccessStats."""
        t = self.structures[structure]["totals"]
        return AccessStats(
            t["data_reads"], t["data_writes"], t["dir_reads"], t["dir_writes"]
        )

    def query_labels(self, structure: str) -> list[str]:
        return list(self.structures[structure].get("queries", {}))

    def access_totals(self) -> dict[str, dict[str, int]]:
        """Per-structure exact access counters, for cross-run comparison.

        Two runs of the same experiment — serial or parallel, traced or
        not — must agree on this projection exactly; it deliberately
        excludes the wall-clock timers that legitimately differ.
        """
        return {
            name: {key: entry["totals"][key] for key in _STATS_KEYS}
            for name, entry in self.structures.items()
        }

    def redundancy_metrics(self) -> dict[str, dict]:
        """Per-structure redundancy metrics from structure snapshots.

        Structures recorded before snapshots existed (pre-v6 reports)
        are simply absent from the result.
        """
        out: dict[str, dict] = {}
        for name, entry in self.structures.items():
            snap = entry.get("snapshot")
            if isinstance(snap, Mapping) and isinstance(
                snap.get("redundancy"), Mapping
            ):
                out[name] = dict(snap["redundancy"])
        return out

    # -- rendering ---------------------------------------------------------

    def render(self, fmt: str = "text") -> str:
        """Human-readable summary: one block per structure.

        ``fmt="markdown"`` emits a pasteable pipe table instead of the
        fixed-width layout.
        """
        if fmt == "markdown":
            return self._render_markdown()
        return self._render_text()

    def _render_markdown(self) -> str:
        lines = [
            f"**{self.label}** ({self.kind}, {self.scale} records, "
            f"{self.page_size} B pages, schema `{self.schema}`)",
            "",
            "| structure | op | ops | mean | p50 | p90 | p99 | max "
            "| results | seconds |",
            "| --- | --- | ---: | ---: | ---: | ---: | ---: | ---: "
            "| ---: | ---: |",
        ]
        for name, entry in self.structures.items():
            build = entry.get("build", {})
            hist = build.get("accesses_per_insert")
            if hist:
                lines.append(
                    f"| {name} | insert | {hist['count']} | {hist['mean']:.2f} "
                    f"| {hist['p50']:.0f} | {hist['p90']:.0f} "
                    f"| {hist['p99']:.0f} | {hist['max']:.0f} | - "
                    f"| {build.get('seconds', 0.0):.3f} |"
                )
            for label, q in entry.get("queries", {}).items():
                h = q["accesses"]
                lines.append(
                    f"| {name} | {label} | {h['count']} | {h['mean']:.2f} "
                    f"| {h['p50']:.0f} | {h['p90']:.0f} | {h['p99']:.0f} "
                    f"| {h['max']:.0f} | {q.get('results', 0)} "
                    f"| {q.get('seconds', 0.0):.3f} |"
                )
        redundancy = self.redundancy_metrics()
        if redundancy:
            lines += [
                "",
                "| structure | duplication | overlap | dead space "
                "| coverage | utilisation |",
                "| --- | ---: | ---: | ---: | ---: | ---: |",
            ]
            for name, red in redundancy.items():
                lines.append(
                    f"| {name} | {red.get('duplication_factor', 0.0):.3f} "
                    f"| {red.get('overlap_volume', 0.0):.4f} "
                    f"| {red.get('dead_space', 0.0):.4f} "
                    f"| {red.get('coverage', 0.0):.4f} "
                    f"| {red.get('utilisation', 0.0):.3f} |"
                )
        storage_rows = [
            (name, entry["storage"])
            for name, entry in self.structures.items()
            if isinstance(entry.get("storage"), Mapping)
        ]
        if storage_rows:
            lines += [
                "",
                "| structure | backend | hit rate | evictions | reads "
                "| writes | wal bytes | commits | write amp |",
                "| --- | --- | ---: | ---: | ---: | ---: | ---: | ---: "
                "| ---: |",
            ]
            for name, st in storage_rows:
                pool = st.get("pool", {})
                pagefile = st.get("pagefile", {})
                lines.append(
                    f"| {name} | {st.get('backend', '?')} "
                    f"| {pool.get('hit_rate', 0.0):.4f} "
                    f"| {pool.get('evictions', 0)} "
                    f"| {pagefile.get('reads', 0)} "
                    f"| {pagefile.get('writes', 0)} "
                    f"| {st.get('wal', {}).get('bytes', 0)} "
                    f"| {st.get('commits', 0)} "
                    f"| {st.get('write_amplification', 0.0):.2f} |"
                )
        return "\n".join(lines)

    def _render_text(self) -> str:
        lines = [
            f"run report: {self.label} ({self.kind}, {self.scale} records, "
            f"{self.page_size} B pages, schema {self.schema})"
        ]
        for name, entry in self.structures.items():
            lines.append("")
            totals = entry.get("totals", {})
            total = sum(totals.values()) if totals else 0
            lines.append(f"{name} — {total} total page accesses")
            red = (entry.get("snapshot") or {}).get("redundancy")
            if isinstance(red, Mapping):
                lines.append(
                    "  redundancy "
                    f"dup={red.get('duplication_factor', 0.0):.3f}  "
                    f"overlap={red.get('overlap_volume', 0.0):.4f}  "
                    f"dead={red.get('dead_space', 0.0):.4f}  "
                    f"coverage={red.get('coverage', 0.0):.4f}  "
                    f"util={red.get('utilisation', 0.0):.3f}"
                )
            st = entry.get("storage")
            if isinstance(st, Mapping):
                pool = st.get("pool", {})
                pagefile = st.get("pagefile", {})
                wal = st.get("wal", {})
                lines.append(
                    "  storage "
                    f"{st.get('backend', '?')}  "
                    f"hit_rate={pool.get('hit_rate', 0.0):.4f}  "
                    f"evictions={pool.get('evictions', 0)}  "
                    f"reads={pagefile.get('reads', 0)}  "
                    f"writes={pagefile.get('writes', 0)}  "
                    f"wal_bytes={wal.get('bytes', 0)}  "
                    f"commits={st.get('commits', 0)}  "
                    f"wa={st.get('write_amplification', 0.0):.2f}"
                )
                fsync = (st.get("latency") or {}).get("storage.io.fsync_seconds")
                if isinstance(fsync, Mapping) and fsync.get("count"):
                    lines.append(
                        "  fsync   "
                        f"count={fsync['count']}  "
                        f"p50={fsync['p50'] * 1e3:.3f}ms  "
                        f"p99={fsync['p99'] * 1e3:.3f}ms  "
                        f"max={fsync['max'] * 1e3:.3f}ms"
                    )
            build = entry.get("build", {})
            hist = build.get("accesses_per_insert")
            if hist:
                lines.append(
                    "  build   "
                    + _histogram_row("insert", hist)
                    + f"{build.get('seconds', 0.0):>10.3f}s"
                )
            queries = entry.get("queries", {})
            if queries:
                lines.append(
                    f"  queries {'op':14s}{'ops':>7s}{'mean':>9s}"
                    f"{'p50':>7s}{'p90':>7s}{'p99':>7s}{'max':>7s}{'results':>9s}"
                )
            for label, q in queries.items():
                lines.append(
                    "          "
                    + _histogram_row(label, q["accesses"])
                    + f"{q.get('results', 0):>9d}"
                )
        return "\n".join(lines)


def _histogram_row(label: str, hist: Mapping) -> str:
    return (
        f"{label:14s}{hist['count']:>7d}{hist['mean']:>9.2f}"
        f"{hist['p50']:>7.0f}{hist['p90']:>7.0f}{hist['p99']:>7.0f}"
        f"{hist['max']:>7.0f}"
    )


# -- report assembly -------------------------------------------------------

_STATS_KEYS = ("data_reads", "data_writes", "dir_reads", "dir_writes")
_HIST_KEYS = ("count", "sum", "min", "max", "mean", "p50", "p90", "p99", "buckets")


def build_run_report(
    *,
    label: str,
    kind: str,
    scale: int,
    page_size: int,
    seed: int | None,
    results: Mapping[str, "object"],
    totals: Mapping[str, AccessStats],
    spans: Iterable[Span],
    timers: Mapping[str, float] | None = None,
    meta: Mapping | None = None,
    storage: Mapping[str, Mapping] | None = None,
    buckets: tuple[float, ...] = DEFAULT_ACCESS_BUCKETS,
) -> RunReport:
    """Assemble a :class:`RunReport` from an experiment's artefacts.

    ``results`` maps structure name to
    :class:`~repro.core.comparison.MethodResult`; ``totals`` maps it to
    the structure's final store counters (use ``store.stats.snapshot()``,
    or a delta when several structures share one store); ``timers`` maps
    ``"<structure>/build"`` / ``"<structure>/queries"`` to seconds.

    Results carrying a structure ``snapshot`` (occupancy / depth /
    redundancy, see :mod:`repro.obs.structure`) contribute it as the
    structure entry's additive ``snapshot`` field; pre-snapshot results
    simply omit it, keeping old and new reports inter-readable.

    ``storage`` maps structure name to the physical-IO counters of a
    durable backend (``store.io_stats()``: pool hit rate, WAL bytes,
    page-file reads/writes).  It lands as the structure entry's
    additive ``storage`` field; simulated-backend runs omit it, and the
    charged ``totals`` are always the simulated-identical counters.
    """
    timers = dict(timers or {})
    spans = list(spans)
    histograms = summarise_spans(spans, buckets)
    touches = summarise_touches(spans)
    structures: dict[str, dict] = {}
    for name, result in results.items():
        per_op = histograms.get(name, {})
        per_op_touches = touches.get(name, {})
        insert_hist = per_op.get("insert")
        entry: dict = {
            "build": {
                "metrics": result.metrics.as_dict(),
                "seconds": timers.get(f"{name}/build", 0.0),
            },
            "queries": {},
            "totals": totals[name].as_dict(),
        }
        if insert_hist is not None:
            entry["build"]["accesses_per_insert"] = insert_hist.as_dict()
        snapshot = getattr(result, "snapshot", None)
        if snapshot is not None:
            entry["snapshot"] = snapshot
        if storage is not None and name in storage:
            entry["storage"] = dict(storage[name])
        build_ops = {
            op: summary
            for op, summary in per_op_touches.items()
            if op in BUILD_OPS
        }
        if build_ops:
            entry["build"]["ops"] = build_ops
        query_seconds = timers.get(f"{name}/queries", 0.0)
        for q_label, cost in result.query_costs.items():
            hist = per_op.get(q_label)
            if hist is None:
                continue
            entry["queries"][q_label] = {
                "accesses": hist.as_dict(),
                "results": result.query_results.get(q_label, 0),
                "seconds": query_seconds / max(1, len(result.query_costs)),
                "mean": cost,
            }
            touch = per_op_touches.get(q_label)
            if touch is not None:
                entry["queries"][q_label]["touches"] = touch
        structures[name] = entry
    return RunReport(
        label=label,
        kind=kind,
        scale=scale,
        page_size=page_size,
        seed=seed,
        structures=structures,
        meta=dict(meta or {}),
    )


# -- flamegraph exporters ---------------------------------------------------


def profile_to_speedscope(attribution, *, name: str, unit: str = "accesses") -> dict:
    """A speedscope file (https://speedscope.app) from an attribution.

    ``attribution`` is anything with a ``stacks(unit)`` method (duck-
    typed to avoid importing :mod:`repro.obs.profile` here), e.g. a
    :class:`~repro.obs.profile.CostAttribution`.  Each stack becomes a
    weighted sample of a ``sampled`` profile; weights are charged disk
    accesses (``unit="accesses"``, speedscope unit ``none``) or
    attributed nanoseconds (``unit="wall"``).
    """
    stacks = attribution.stacks(unit)
    frame_index: dict[str, int] = {}
    frames: list[dict] = []
    samples: list[list[int]] = []
    weights: list[int] = []
    for path, weight in stacks:
        sample = []
        for frame in path:
            label = frame or "(setup)"
            if label not in frame_index:
                frame_index[label] = len(frames)
                frames.append({"name": label})
            sample.append(frame_index[label])
        samples.append(sample)
        weights.append(weight)
    total = sum(weights)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": f"{name} ({unit})",
                "unit": "nanoseconds" if unit == "wall" else "none",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        ],
        "name": name,
        "exporter": "repro.obs.export",
    }


def profile_to_collapsed(attribution, *, unit: str = "accesses") -> str:
    """Brendan Gregg collapsed-stack lines (``a;b;c weight`` per line).

    Consumable by ``flamegraph.pl`` and most flamegraph viewers; same
    duck-typed ``stacks(unit)`` contract as
    :func:`profile_to_speedscope`.
    """
    lines = []
    for path, weight in attribution.stacks(unit):
        frames = ";".join(frame or "(setup)" for frame in path)
        lines.append(f"{frames} {weight}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- validation ------------------------------------------------------------


def validate_run_report(data: Mapping) -> list[str]:
    """Shape-check a run-report dict; returns problems ([] when valid)."""
    problems: list[str] = []
    if not isinstance(data, Mapping):
        return ["report is not a JSON object"]
    if data.get("schema") != RUN_REPORT_SCHEMA:
        problems.append(
            f"schema is {data.get('schema')!r}, expected {RUN_REPORT_SCHEMA!r}"
        )
    for key, types in (
        ("label", str),
        ("kind", str),
        ("scale", int),
        ("page_size", int),
    ):
        if not isinstance(data.get(key), types):
            problems.append(f"missing or mistyped field {key!r}")
    if not isinstance(data.get("structures"), Mapping):
        problems.append("missing or mistyped field 'structures'")
        return problems
    for name, entry in data["structures"].items():
        where = f"structures[{name!r}]"
        if not isinstance(entry, Mapping):
            problems.append(f"{where} is not an object")
            continue
        totals = entry.get("totals")
        if not isinstance(totals, Mapping) or any(
            not isinstance(totals.get(k), int) for k in _STATS_KEYS
        ):
            problems.append(f"{where}.totals must carry integer {_STATS_KEYS}")
        snapshot = entry.get("snapshot")
        if snapshot is not None:
            from repro.obs.structure import validate_snapshot

            problems.extend(
                f"{where}.snapshot: {p}" for p in validate_snapshot(snapshot)
            )
        storage = entry.get("storage")
        if storage is not None:
            if not isinstance(storage, Mapping):
                problems.append(f"{where}.storage is not an object")
            else:
                from repro.obs.telemetry import validate_io_stats

                problems.extend(
                    f"{where}.storage: {p}" for p in validate_io_stats(storage)
                )
        build = entry.get("build")
        if not isinstance(build, Mapping) or not isinstance(
            build.get("metrics"), Mapping
        ):
            problems.append(f"{where}.build.metrics missing")
        queries = entry.get("queries", {})
        if not isinstance(queries, Mapping):
            problems.append(f"{where}.queries is not an object")
            continue
        for q_label, q in queries.items():
            accesses = q.get("accesses") if isinstance(q, Mapping) else None
            if not isinstance(accesses, Mapping) or any(
                k not in accesses for k in _HIST_KEYS
            ):
                problems.append(
                    f"{where}.queries[{q_label!r}].accesses is not a histogram"
                )
    return problems
