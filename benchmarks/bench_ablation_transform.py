"""Transformation ablation: corner vs center representation [See 89].

"Simply speaking the corner representation yields approximately half
the number of page accesses of the center representation" (§7) — the
published center scheme bounds extents only by the data space.  The
bench also measures the center variant with tracked extent bounds, the
obvious modern improvement, which closes much of the gap.
"""

from repro.core.comparison import build_sam, run_sam_queries
from repro.pam.buddytree import BuddyTree
from repro.sam.transformation import TransformationSAM
from repro.workloads.rect_distributions import generate_rect_file

from benchmarks.conftest import bench_scale, emit


def query_average(result):
    return sum(result.query_costs.values()) / len(result.query_costs)


def test_corner_vs_center(benchmark):
    rects = generate_rect_file("gaussian_square", max(bench_scale() // 2, 2000))
    variants = {
        "corner": dict(representation="corner"),
        "center": dict(representation="center"),
        "center+bound": dict(representation="center", bounded_extents=True),
    }
    results = {}
    for name, kwargs in variants.items():
        sam = build_sam(
            lambda s, dims=2, kw=kwargs: TransformationSAM(
                s, lambda st, dims: BuddyTree(st, dims), dims=dims, **kw
            ),
            rects,
        )
        results[name] = run_sam_queries(sam)
    benchmark(lambda: results)
    emit(
        "ABL-TRANSFORM",
        "Corner vs center representation (BUDDY substrate, Gaussiansquare)\n"
        f"{'':14s}{'point':>8s}{'intersect':>10s}{'enclose':>9s}{'contain':>9s}{'avg':>8s}\n"
        + "\n".join(
            f"{name:14s}"
            f"{r.query_costs['point']:8.1f}"
            f"{r.query_costs['intersection']:10.1f}"
            f"{r.query_costs['enclosure']:9.1f}"
            f"{r.query_costs['containment']:9.1f}"
            f"{query_average(r):8.1f}"
            for name, r in results.items()
        ),
    )
    corner = query_average(results["corner"])
    center = query_average(results["center"])
    bounded = query_average(results["center+bound"])
    # Seeger's finding: corner clearly beats the published center scheme.
    assert corner < center * 0.75
    # Extent bounding recovers part (not all) of the difference.
    assert bounded <= center
