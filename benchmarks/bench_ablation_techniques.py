"""Technique ablation: clipping vs transformation vs overlapping regions.

§6–§8 compare the three ways of extending a PAM to a SAM.  The bench
adds the clipping technique (redundant z-regions over a B+-tree, the
subject of Orenstein's companion paper in the same proceedings) to the
measured pair and sweeps its redundancy budget, exhibiting the
redundancy/retrieval trade-off.
"""

import time

from repro.core.comparison import build_sam, run_sam_queries
from repro.pam.buddytree import BuddyTree
from repro.sam.clipping import ClippingSAM
from repro.sam.overlapping import OverlappingPlop
from repro.sam.rplustree import RPlusTree
from repro.sam.transformation import TransformationSAM
from repro.workloads.rect_distributions import generate_rect_file

from benchmarks.conftest import bench_scale, emit, emit_json


def query_average(result):
    return sum(result.query_costs.values()) / len(result.query_costs)


def test_three_techniques(benchmark):
    rects = generate_rect_file("gaussian_square", max(bench_scale() // 2, 2000))
    sams = {
        "transformation": lambda s, dims=2: TransformationSAM(
            s, lambda st, dims: BuddyTree(st, dims), dims=dims
        ),
        "overlapping": lambda s, dims=2: OverlappingPlop(s, dims),
        "clipping": lambda s, dims=2: ClippingSAM(s, dims, redundancy=4),
        "clipping-R+": lambda s, dims=2: RPlusTree(s, dims),
    }
    results = {name: run_sam_queries(build_sam(f, rects)) for name, f in sams.items()}
    benchmark(lambda: results)
    emit(
        "ABL-TECHNIQUES",
        "PAM-to-SAM techniques (Gaussiansquare, avg accesses per query)\n"
        f"{'':16s}{'point':>8s}{'intersect':>10s}{'enclose':>9s}{'contain':>9s}\n"
        + "\n".join(
            f"{name:16s}"
            f"{r.query_costs['point']:8.1f}"
            f"{r.query_costs['intersection']:10.1f}"
            f"{r.query_costs['enclosure']:9.1f}"
            f"{r.query_costs['containment']:9.1f}"
            for name, r in results.items()
        ),
    )
    # §8: "the technique of transformation was always best for the
    # rectangle containment query".
    best_containment = min(results, key=lambda n: results[n].query_costs["containment"])
    assert best_containment == "transformation"


def test_clipping_redundancy_sweep(benchmark):
    from repro.obs.ablation import build_clip_redundancy_document
    from repro.obs.ledger import entry_from_bench_document, ledger_from_env

    rects = generate_rect_file("gaussian_square", max(bench_scale() // 4, 1000))
    rows = {}
    doc_rows = []
    for redundancy in (1, 2, 4, 8):
        started = time.perf_counter()
        sam = build_sam(
            lambda s, dims=2, r=redundancy: ClippingSAM(s, dims, redundancy=r), rects
        )
        build_seconds = time.perf_counter() - started
        started = time.perf_counter()
        result = run_sam_queries(sam)
        query_seconds = time.perf_counter() - started
        rows[redundancy] = (
            sam.stored_regions / len(rects),
            result.query_costs["point"],
            result.metrics.data_pages,
        )
        doc_rows.append(
            {
                "budget": redundancy,
                "regions_per_object": sam.stored_regions / len(rects),
                "point_cost": result.query_costs["point"],
                "data_pages": result.metrics.data_pages,
                "build_seconds": build_seconds,
                "query_seconds": query_seconds,
                "redundancy": dict(sam.snapshot()["redundancy"]),
            }
        )
    benchmark(lambda: rows)
    emit(
        "ABL-CLIP-REDUNDANCY",
        "Clipping redundancy sweep (Orenstein's trade-off)\n"
        f"{'budget':>8s}{'regions/obj':>13s}{'point cost':>12s}{'data pages':>12s}\n"
        + "\n".join(
            f"{budget:8d}{factor:13.2f}{cost:12.1f}{pages:12d}"
            for budget, (factor, cost, pages) in rows.items()
        ),
    )
    doc = build_clip_redundancy_document(
        file="gaussian_square",
        scale=len(rects),
        page_size=512,
        seed=107,
        rows=doc_rows,
    )
    emit_json("ABL-CLIP-REDUNDANCY", doc)
    ledger = ledger_from_env()
    if ledger is not None:
        ledger.record(entry_from_bench_document(doc))
    # More redundancy => strictly more stored regions.
    factors = [rows[b][0] for b in (1, 2, 4, 8)]
    assert factors == sorted(factors)
    assert factors[0] == 1.0
