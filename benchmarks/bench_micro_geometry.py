"""Microbenchmarks pinning the geometry hot-path optimisations.

Two per-call wins ride under every query of the testbed:

* :meth:`Rect.intersects` runs a single early-exit pass over the axes —
  the first separating axis settles the verdict — instead of evaluating
  all ``lo`` comparisons before any ``hi`` comparison;
* :func:`repro.geometry.zorder.z_value` spreads each quantized
  coordinate through a 256-entry table (one lookup per 8 bits) instead
  of assembling the Morton code bit by bit, for the 2-d native
  structures and the 4-d transformed space alike.

Each case times the shipped implementation against a straightforward
reference written here, min-of-repeats, and asserts a modest win so a
regression that silently reverts the optimisation fails the bench.  The
reference implementations are first checked to agree exactly.
"""

import math
import timeit
from random import Random

from repro.geometry.rect import Rect
from repro.geometry.zorder import z_value

from benchmarks.conftest import emit

REPEATS = 7
NUMBER = 200


def ref_intersects(a: Rect, b: Rect) -> bool:
    """Two full generator passes: all lo-vs-hi, then all hi-vs-lo."""
    return all(l <= oh for l, oh in zip(a.lo, b.hi)) and all(
        ol <= h for ol, h in zip(b.lo, a.hi)
    )


def ref_z_value(point, dims: int, bits_per_axis: int = 16) -> int:
    """Cyclic MSB-first interleaving, one shift-or step per output bit."""
    scale = 1 << bits_per_axis
    qs = []
    for c in point:
        q = math.floor(c * scale)
        if q >= scale:
            q = scale - 1
        qs.append(q)
    z = 0
    for j in range(bits_per_axis - 1, -1, -1):
        for axis in range(dims):
            z = (z << 1) | ((qs[axis] >> j) & 1)
    return z


def _best(fn) -> float:
    return min(timeit.repeat(fn, number=NUMBER, repeat=REPEATS)) / NUMBER


def test_micro_geometry(benchmark):
    rng = Random(42)

    def rect(size):
        lo = tuple(rng.uniform(0, 1 - size) for _ in range(2))
        return Rect(lo, tuple(c + size for c in lo))

    # Mostly-disjoint pairs: the pruning pattern of a directory descent,
    # where the early exit pays.
    pairs = [(rect(0.05), rect(0.05)) for _ in range(300)]
    for a, b in pairs:
        assert a.intersects(b) == ref_intersects(a, b)

    points2 = [(rng.random(), rng.random()) for _ in range(300)]
    points4 = [tuple(rng.random() for _ in range(4)) for _ in range(300)]
    for p in points2:
        assert z_value(p, 2) == ref_z_value(p, 2)
    for p in points4:
        assert z_value(p, 4) == ref_z_value(p, 4)

    timings = {
        "intersects": (
            _best(lambda: [a.intersects(b) for a, b in pairs]),
            _best(lambda: [ref_intersects(a, b) for a, b in pairs]),
        ),
        "z_value 2-d": (
            _best(lambda: [z_value(p, 2) for p in points2]),
            _best(lambda: [ref_z_value(p, 2) for p in points2]),
        ),
        "z_value 4-d": (
            _best(lambda: [z_value(p, 4) for p in points4]),
            _best(lambda: [ref_z_value(p, 4) for p in points4]),
        ),
    }
    benchmark(lambda: [a.intersects(b) for a, b in pairs])

    rows = {
        name: (opt * 1e6, ref * 1e6, ref / opt)
        for name, (opt, ref) in timings.items()
    }
    emit(
        "BENCH-MICRO-GEO",
        "Geometry micro-optimisations (300 calls per sample, min of "
        f"{REPEATS}x{NUMBER} repeats)\n"
        f"{'':14s}{'optimised':>12s}{'reference':>12s}{'win':>7s}\n"
        + "\n".join(
            f"{name:14s}{opt:10.1f}us{ref:10.1f}us{win:6.2f}x"
            for name, (opt, ref, win) in rows.items()
        ),
    )

    # Modest margins: the wins are ~1.5-4x locally, but CI boxes are noisy.
    assert rows["intersects"][2] > 1.05
    assert rows["z_value 2-d"][2] > 1.2
    assert rows["z_value 4-d"][2] > 1.2
