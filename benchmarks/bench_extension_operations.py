"""Spatial join and nearest-neighbour benches (the §8 missing operations).

"There are additional important operations and queries such as spatial
join ('overlay two maps') and near neighbor-type queries" — measured
here as an extension: the synchronised R-tree join against the
nested-loop baseline, and best-first nearest neighbours against a full
scan bound.
"""

from repro.core.comparison import build_sam
from repro.obs.metrics import Histogram
from repro.obs.tracer import Tracer
from repro.sam.operations import nearest_neighbors, nested_loop_join, rtree_join
from repro.sam.rtree import RTree
from repro.workloads.queries import generate_point_queries
from repro.workloads.rect_distributions import generate_rect_file

from benchmarks.conftest import bench_scale, emit


def test_spatial_join(benchmark):
    n = max(bench_scale() // 4, 1000)
    left_rects = generate_rect_file("uniform_small", n, seed=41)
    right_rects = generate_rect_file("gaussian_square", n, seed=42)
    left = build_sam(lambda s, dims=2: RTree(s, dims), left_rects)
    right = build_sam(lambda s, dims=2: RTree(s, dims), right_rects)

    before = left.store.stats.total + right.store.stats.total
    pairs = benchmark.pedantic(
        lambda: rtree_join(left, right), rounds=1, iterations=1
    )
    sync_cost = left.store.stats.total + right.store.stats.total - before

    fresh = build_sam(lambda s, dims=2: RTree(s, dims), right_rects)
    before = fresh.store.stats.total
    nested = nested_loop_join(list(zip(left_rects, range(n))), fresh)
    nested_cost = fresh.store.stats.total - before

    emit(
        "EXT-JOIN",
        "Spatial join ('overlay two maps'), page accesses\n"
        f"{'result pairs':20s}{len(pairs):>10d}\n"
        f"{'synchronised join':20s}{sync_cost:>10d}\n"
        f"{'nested-loop join':20s}{nested_cost:>10d}",
    )
    assert sorted(pairs) == sorted(nested)
    assert sync_cost < nested_cost


def test_nearest_neighbors(benchmark):
    n = max(bench_scale() // 2, 2000)
    rects = generate_rect_file("uniform_small", n, seed=43)
    tree = build_sam(lambda s, dims=2: RTree(s, dims), rects)
    probes = generate_point_queries(count=20, seed=44)
    # Trace each probe as its own span so the emitted table can report
    # the per-probe access *distribution*, not just the total.
    tracer = Tracer().attach(tree.store)
    tracer.set_context(structure="R-Tree", op="nn")

    def run():
        total_cost = 0
        for probe in probes:
            tree.store.begin_operation()
            tree.store.begin_operation()
            before = tree.store.stats.total
            nearest_neighbors(tree, probe, k=5)
            total_cost += tree.store.stats.total - before
        return total_cost

    total_cost = benchmark.pedantic(run, rounds=1, iterations=1)
    per_probe = Histogram("nn/accesses")
    # Every second span is the empty double-bracket flush; keep probes.
    for span in tracer.finish():
        if span.op == "nn" and span.accesses:
            per_probe.observe(span.accesses)
    pages = tree.metrics().data_pages + tree.metrics().directory_pages
    emit(
        "EXT-NN",
        "Nearest neighbours (k=5, 20 probes), page accesses\n"
        f"{'best-first total':20s}{total_cost:>10d}\n"
        f"{'file size (pages)':20s}{pages:>10d}\n"
        f"{'per-probe p50':20s}{per_probe.percentile(50):>10.0f}\n"
        f"{'per-probe p90':20s}{per_probe.percentile(90):>10.0f}\n"
        f"{'per-probe p99':20s}{per_probe.percentile(99):>10.0f}\n"
        f"{'per-probe max':20s}{per_probe.max:>10.0f}",
    )
    # Branch-and-bound must beat even a single full scan per probe.
    assert total_cost < pages
    # The distribution must account for the measured total exactly.
    assert per_probe.sum == total_cost
