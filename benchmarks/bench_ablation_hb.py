"""HB + minimal regions: the paper's §5 prescription, measured.

"We believe that the only way to improve HB is to incorporate the
concept of not partitioning empty data space.  With this and the median
partition it might become very competitive."
"""

from repro.core.comparison import build_pam, normalise, run_pam_queries
from repro.pam.hbtree import HBTree
from repro.pam.twolevelgrid import TwoLevelGridFile
from repro.workloads.distributions import generate_point_file

from benchmarks.conftest import bench_scale, emit


def test_hb_minimal_regions(benchmark):
    rows = {}
    for file_name in ("diagonal", "cluster", "uniform"):
        points = generate_point_file(file_name, max(bench_scale() // 2, 2000))
        grid = run_pam_queries(
            build_pam(lambda s, dims=2: TwoLevelGridFile(s, dims), points)
        )
        plain = run_pam_queries(build_pam(lambda s, dims=2: HBTree(s, dims), points))
        minimal = run_pam_queries(
            build_pam(lambda s, dims=2: HBTree(s, dims, minimal_regions=True), points)
        )
        rows[file_name] = (
            100.0 * plain.query_average / grid.query_average,
            100.0 * minimal.query_average / grid.query_average,
        )
    benchmark(lambda: rows)
    emit(
        "ABL-HB-MBR",
        "HB with minimal regions (§5 prescription, % of GRID)\n"
        f"{'':12s}{'HB':>10s}{'HB+MBR':>10s}\n"
        + "\n".join(
            f"{name:12s}{p:10.1f}{m:10.1f}" for name, (p, m) in rows.items()
        ),
    )
    # The prediction holds on the empty-space-dominated files.
    assert rows["diagonal"][1] < rows["diagonal"][0]
    assert rows["cluster"][1] < rows["cluster"][0]
