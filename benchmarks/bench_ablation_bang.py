"""BANG ablations: the spanning property and entry-length encoding.

§5 of the paper traces two BANG weaknesses to implementation choices:

* the missing *spanning property* makes exact-match probes (and small
  range queries) touch extra directory branches;
* fixed-length directory entries waste page space; the simulated BANG*
  with variable-length entries is uniformly a few points better.
"""

from repro.core.comparison import build_pam, measure, run_pam_queries
from repro.pam.bang import BangFile
from repro.workloads.distributions import generate_point_file

from benchmarks.conftest import bench_scale, emit


def test_spanning_property(benchmark):
    points = generate_point_file("cluster", max(bench_scale() // 2, 2000))
    plain = build_pam(lambda s, dims=2: BangFile(s, dims), points)
    spanning = build_pam(lambda s, dims=2: BangFile(s, dims, spanning=True), points)

    def probe_cost(bang):
        total = 0
        for p in points[:: max(1, len(points) // 200)]:
            # Two brackets flush the search-path buffer so each probe is
            # measured cold (the multi-branch probe would otherwise act
            # as a prefetch for its successor).
            bang.store.begin_operation()
            bang.store.begin_operation()
            cost, _ = measure(bang.store, lambda p=p: bang.exact_match(p))
            total += cost
        return total

    plain_cost = probe_cost(plain)
    spanning_cost = benchmark(lambda: probe_cost(spanning))
    emit(
        "ABL-BANG-SPANNING",
        "BANG spanning-property ablation (total exact-match accesses)\n"
        f"{'without spanning':>20s}{plain_cost:10d}\n"
        f"{'with spanning':>20s}{spanning_cost:10d}",
    )
    # The spanning property can only reduce probe cost (§5).
    assert spanning_cost <= plain_cost


def test_variable_length_entries(benchmark):
    points = generate_point_file("cluster", max(bench_scale() // 2, 2000))
    plain = build_pam(lambda s, dims=2: BangFile(s, dims), points)
    star = build_pam(
        lambda s, dims=2: BangFile(s, dims, variable_length_entries=True), points
    )
    plain_result = run_pam_queries(plain)
    star_result = benchmark.pedantic(
        lambda: run_pam_queries(star), rounds=1, iterations=1
    )
    emit(
        "ABL-BANG-ENTRIES",
        "BANG fixed vs variable-length directory entries\n"
        f"{'':14s}{'query avg':>10s}{'dir pages':>10s}\n"
        f"{'BANG':14s}{plain_result.query_average:10.1f}"
        f"{plain_result.metrics.directory_pages:10d}\n"
        f"{'BANG*':14s}{star_result.query_average:10.1f}"
        f"{star_result.metrics.directory_pages:10d}",
    )
    # Table 5.1: BANG* never needs more directory pages and is at least
    # as good on the query average.
    assert star_result.metrics.directory_pages <= plain_result.metrics.directory_pages
    assert star_result.query_average <= plain_result.query_average * 1.05


def test_minimal_regions(benchmark):
    """§9: grafting BUDDY's minimal regions onto BANG.

    "Incorporating an adapted concept of minimizing regions into BANG
    will improve the retrieval performance to some extent" — measured on
    the two distributions with the most empty space.
    """
    rows = {}
    for file_name in ("diagonal", "cluster"):
        points = generate_point_file(file_name, max(bench_scale() // 2, 2000))
        plain = run_pam_queries(build_pam(lambda s, dims=2: BangFile(s, dims), points))
        minimal = run_pam_queries(
            build_pam(lambda s, dims=2: BangFile(s, dims, minimal_regions=True), points)
        )
        rows[file_name] = (plain.query_average, minimal.query_average)
    benchmark(lambda: rows)
    emit(
        "ABL-BANG-MBR",
        "BANG with minimal regions (the paper's §9 suggestion)\n"
        f"{'':12s}{'BANG':>10s}{'BANG+MBR':>10s}\n"
        + "\n".join(
            f"{name:12s}{plain:10.1f}{minimal:10.1f}"
            for name, (plain, minimal) in rows.items()
        ),
    )
    # The predicted improvement materialises on both skewed files.
    for plain, minimal in rows.values():
        assert minimal < plain
