"""Insertion-order ablation (characteristic C2 of §5).

"Sorted insertions frequently occur in real-life applications ...
Whereas other PAMs suffer from (C2), BUDDY and BUDDY+ behave robust."
The bench inserts the same uniform point set in random and in
lexicographically sorted order and compares the query averages.
"""

from repro.core.comparison import build_pam, run_pam_queries
from repro.core.testbed import standard_pam_factories
from repro.workloads.distributions import generate_point_file

from benchmarks.conftest import bench_scale, emit


def test_sorted_insertion(benchmark):
    points = generate_point_file("uniform", max(bench_scale() // 2, 2000))
    sorted_points = sorted(points)
    factories = standard_pam_factories()
    rows = {}
    for name in ("GRID", "BANG", "BUDDY"):
        random_result = run_pam_queries(build_pam(factories[name], points))
        sorted_result = run_pam_queries(build_pam(factories[name], sorted_points))
        rows[name] = (
            random_result.query_average,
            sorted_result.query_average,
            sorted_result.metrics.storage_utilization,
        )
    benchmark(lambda: rows)
    emit(
        "ABL-INSERT-ORDER",
        "Sorted vs random insertion (uniform data, avg accesses per query)\n"
        f"{'':10s}{'random':>10s}{'sorted':>10s}{'stor sorted':>12s}\n"
        + "\n".join(
            f"{name:10s}{random_avg:10.1f}{sorted_avg:10.1f}{stor:12.1f}"
            for name, (random_avg, sorted_avg, stor) in rows.items()
        ),
    )
    # BUDDY's sorted-order degradation is the smallest of the three.
    degradation = {
        name: sorted_avg / random_avg for name, (random_avg, sorted_avg, _) in rows.items()
    }
    assert degradation["BUDDY"] <= min(degradation["GRID"], degradation["BANG"]) * 1.10
