"""Deletion bench (an extension: §3 leaves deletions unmeasured).

"For the BANG-file and the hB-tree no deletion algorithms have been
specified.  Therefore, for our comparison we only consider the case of
the growing file."  Deletion *is* specified for the grid file, the
buddy tree and the R-tree; the bench shrinks built files by half and
reports the average deletion cost and the resulting utilisation.
"""

from repro.core.comparison import build_pam, build_sam
from repro.pam.buddytree import BuddyTree
from repro.pam.gridfile import GridFile
from repro.sam.rtree import RTree
from repro.workloads.distributions import generate_point_file
from repro.workloads.rect_distributions import generate_rect_file

from benchmarks.conftest import bench_scale, emit


def test_deletion_costs(benchmark):
    n = max(bench_scale() // 2, 2000)
    points = generate_point_file("uniform", n)
    rects = generate_rect_file("uniform_small", n)

    def run():
        rows = {}
        for name, index, items, delete in (
            (
                "GridFile",
                build_pam(lambda s, dims=2: GridFile(s, dims), points),
                points,
                lambda ix, item, rid: ix.delete(item, rid),
            ),
            (
                "BUDDY",
                build_pam(lambda s, dims=2: BuddyTree(s, dims), points),
                points,
                lambda ix, item, rid: ix.delete(item, rid),
            ),
            (
                "R-Tree",
                build_sam(lambda s, dims=2: RTree(s, dims), rects),
                rects,
                lambda ix, item, rid: ix.delete(item, rid),
            ),
        ):
            before = index.store.stats.total
            half = len(items) // 2
            for rid, item in enumerate(items[:half]):
                assert delete(index, item, rid)
            cost = (index.store.stats.total - before) / half
            rows[name] = (cost, index.metrics().storage_utilization)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "EXT-DELETE",
        "Deleting half the file (avg accesses per deletion)\n"
        f"{'':10s}{'delete':>8s}{'stor after':>11s}\n"
        + "\n".join(
            f"{name:10s}{cost:8.2f}{stor:11.1f}"
            for name, (cost, stor) in rows.items()
        ),
    )
    for cost, stor in rows.values():
        assert cost > 0
        assert 0 < stor <= 100
