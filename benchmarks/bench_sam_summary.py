"""Reproduces the §8 summary table: per-type averages over the five
rectangle files, normalised to the R-tree (= 100), plus the average
storage utilisation and insertion cost."""

import pytest

from repro.bench.paper import SAM_SUMMARY_PAPER
from repro.core.comparison import SAM_QUERY_TYPES

from benchmarks.conftest import (
    emit,
    paper_vs_measured,
    reports_enabled,
    sam_report,
    sam_results,
)

FILES = ("uniform_small", "uniform_large", "gaussian_square", "gaussian_slim", "diagonal")
STRUCTURES = ("R-Tree", "BANG", "BUDDY", "PLOP")


def test_table_sam_average(benchmark):
    per_file = {file_name: sam_results(file_name) for file_name in FILES}
    measured = {}
    for name in STRUCTURES:
        normalised = []
        for query in SAM_QUERY_TYPES:
            ratios = [
                100.0
                * per_file[f][name].query_costs[query]
                / per_file[f]["R-Tree"].query_costs[query]
                for f in FILES
            ]
            normalised.append(sum(ratios) / len(ratios))
        stor = sum(
            per_file[f][name].metrics.storage_utilization for f in FILES
        ) / len(FILES)
        insert = sum(per_file[f][name].metrics.insert_cost for f in FILES) / len(FILES)
        measured[name] = tuple(normalised) + (stor, insert)
    emit(
        "TAB-SAM-AVG",
        paper_vs_measured(
            "SAM summary: average over the 5 rectangle files (R-tree = 100)",
            SAM_SUMMARY_PAPER,
            measured,
            ("point", "intersect", "enclose", "contain", "stor", "insert"),
        ),
    )
    benchmark(lambda: measured)
    # The paper's strongest conclusion survives any implementation
    # tuning: the corner transformation wins rectangle containment by an
    # order of magnitude (paper: 14 % of the R-tree; see EXPERIMENTS.md
    # for the point/intersection deviation caused by our tighter R-tree).
    assert measured["BUDDY"][3] < 50.0  # containment
    assert measured["BANG"][3] < 50.0
    # PLOP does not beat the R-tree on intersection on average.
    assert measured["PLOP"][1] > 85.0


def test_access_distributions():
    """With --report: §8 per-query access distributions for one file."""
    if not reports_enabled():
        pytest.skip("run the benches with --report to trace distributions")
    report = sam_report("uniform_small")
    emit("TAB-SAM-AVG-DIST", report.render())
    results = sam_results("uniform_small")
    for name, result in results.items():
        for label, cost in result.query_costs.items():
            hist = report.structures[name]["queries"][label]["accesses"]
            assert hist["mean"] == pytest.approx(cost)
