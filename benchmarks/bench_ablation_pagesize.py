"""Page-size ablation (§3).

"A doubling of the page size can accommodate an eight times higher file
size within the same directory height for tree-based directories" — the
bench builds BUDDY and BANG with 512-, 1024- and 2048-byte pages and
reports height, pages and query averages.
"""

from repro.core.comparison import run_pam_queries
from repro.pam.bang import BangFile
from repro.pam.buddytree import BuddyTree
from repro.storage.pagestore import PageStore
from repro.workloads.distributions import generate_point_file

from benchmarks.conftest import bench_scale, emit


def test_page_sizes(benchmark):
    points = generate_point_file("uniform", max(bench_scale() // 2, 2000))
    rows = []
    for page_size in (512, 1024, 2048):
        for name, factory in (("BUDDY", BuddyTree), ("BANG", BangFile)):
            pam = factory(PageStore(page_size), 2)
            for i, p in enumerate(points):
                pam.insert(p, i)
            result = run_pam_queries(pam)
            rows.append(
                (name, page_size, result.metrics.height,
                 result.metrics.data_pages + result.metrics.directory_pages,
                 result.query_average)
            )
    benchmark(lambda: rows)
    emit(
        "ABL-PAGESIZE",
        "Page-size ablation (uniform data)\n"
        f"{'':8s}{'page':>6s}{'h':>4s}{'pages':>8s}{'query avg':>11s}\n"
        + "\n".join(
            f"{name:8s}{size:6d}{h:4d}{pages:8d}{avg:11.1f}"
            for name, size, h, pages, avg in rows
        ),
    )
    # Larger pages never increase the directory height or the page count.
    by_struct = {}
    for name, size, h, pages, _ in rows:
        by_struct.setdefault(name, []).append((size, h, pages))
    for name, entries in by_struct.items():
        heights = [h for _, h, _ in entries]
        pages = [p for _, _, p in entries]
        assert heights == sorted(heights, reverse=True) or len(set(heights)) == 1
        assert pages == sorted(pages, reverse=True)
