"""Reproduces the three §4 PAM figures (FIG-REAL, FIG-DIAG, FIG-CLUST).

The paper visualises these three "real-life and robustness" files as bar
charts of the five query types, normalised to GRID = 100 %.  The benches
print the series behind the bars (one row per structure) plus, for the
cluster file, the side table of build metrics shown next to the figure.
"""

from repro.bench.paper import PAM_QUERY_AVERAGE_PAPER, PAM_TABLE_PAPER
from repro.core.comparison import PAM_QUERY_TYPES, normalise
from repro.workloads.queries import generate_range_queries

from benchmarks.conftest import built_pam, emit, pam_results, paper_vs_measured


def figure_text(title: str, file_name: str, norm) -> str:
    lines = [title, f"{'':8s}" + "".join(f"{q:>12s}" for q in PAM_QUERY_TYPES)
             + f"{'avg':>10s}{'paper avg':>11s}"]
    paper_avg = PAM_QUERY_AVERAGE_PAPER.get(file_name, {})
    for name, costs in norm.items():
        avg = sum(costs.values()) / len(costs)
        reference = paper_avg.get(name)
        reference_text = f"{reference:11.1f}" if reference is not None else f"{'-':>11s}"
        lines.append(
            f"{name:8s}"
            + "".join(f"{costs[q]:12.1f}" for q in PAM_QUERY_TYPES)
            + f"{avg:10.1f}"
            + reference_text
        )
    return "\n".join(lines)


def run_figure(benchmark, file_name: str, experiment_id: str, title: str):
    results = pam_results(file_name)
    norm = normalise(results, "GRID")
    emit(experiment_id, figure_text(title, file_name, norm))
    pam = built_pam(file_name, "BUDDY")
    queries = generate_range_queries(0.001)
    benchmark(lambda: [pam.range_query(q) for q in queries])
    return results, norm


def query_average(norm, name):
    return sum(norm[name].values()) / len(norm[name])


def test_fig_real_data(benchmark):
    results, norm = run_figure(
        benchmark, "real", "FIG-REAL", "Real Data figure series (GRID = 100)"
    )
    # Paper: GRID leads narrowly; BANG is the loser on cartography data.
    assert query_average(norm, "BANG") > 100.0
    assert query_average(norm, "BUDDY") < query_average(norm, "BANG")


def test_fig_diagonal(benchmark):
    results, norm = run_figure(
        benchmark, "diagonal", "FIG-DIAG", "Diagonal figure series (GRID = 100)"
    )
    # Paper: BUDDY at 28.4 % of GRID — the headline result.
    assert query_average(norm, "BUDDY") < 50.0
    assert query_average(norm, "BANG*") < query_average(norm, "BANG")


def test_fig_cluster(benchmark):
    results, norm = run_figure(
        benchmark, "cluster", "FIG-CLUST", "Cluster Points figure series (GRID = 100)"
    )
    side_table = paper_vs_measured(
        "Cluster Points build metrics",
        {
            name: row[5:]
            for name, row in PAM_TABLE_PAPER["cluster"].items()
        },
        {
            name: (
                r.metrics.storage_utilization,
                r.metrics.dir_data_ratio,
                r.metrics.insert_cost,
                r.metrics.height,
            )
            for name, r in results.items()
        },
        ("stor", "dir/data", "insert", "h"),
    )
    emit("FIG-CLUST-metrics", side_table)
    # Paper: BUDDY and BANG beat GRID on clusters, HB is the loser.
    assert query_average(norm, "BUDDY") < 100.0
    assert query_average(norm, "HB") > query_average(norm, "BUDDY")
