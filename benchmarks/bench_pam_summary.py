"""Reproduces Tables 5.1 and 5.2 (the paper's summary indicators).

Table 5.2 averages the five query types per distribution (as % of GRID);
Table 5.1 then averages over all seven distributions, together with the
unweighted averages of storage utilisation and insertion cost.  These
tables carry the paper's headline: *BUDDY wins with an at least 20 %
better average query performance*.
"""

import pytest

from repro.bench.paper import PAM_QUERY_AVERAGE_PAPER, PAM_SUMMARY_PAPER
from repro.core.comparison import normalise
from repro.workloads.distributions import POINT_FILES
from repro.workloads.queries import generate_range_queries

from benchmarks.conftest import (
    built_pam,
    emit,
    pam_report,
    pam_results,
    paper_vs_measured,
    reports_enabled,
)

ORDER = ("uniform", "sinus", "bit", "x_parallel", "real", "diagonal", "cluster")
STRUCTURES = ("HB", "BANG", "BANG*", "GRID", "BUDDY", "BUDDY+")


def all_query_averages() -> dict[str, dict[str, float]]:
    """distribution -> structure -> query average (% of GRID)."""
    table: dict[str, dict[str, float]] = {}
    for file_name in ORDER:
        results = pam_results(file_name)
        norm = normalise(results, "GRID")
        table[file_name] = {
            name: sum(norm[name].values()) / len(norm[name]) for name in results
        }
    return table


def test_table_5_2(benchmark):
    table = all_query_averages()
    measured = {
        name: tuple(table[f][name] for f in ORDER) for name in STRUCTURES
    }
    paper = {
        name: tuple(PAM_QUERY_AVERAGE_PAPER[f][name] for f in ORDER)
        for name in STRUCTURES
    }
    emit(
        "TAB-5.2",
        paper_vs_measured(
            "Table 5.2: query average per distribution (% of GRID)",
            paper,
            measured,
            ORDER,
        ),
    )
    pam = built_pam("cluster", "BUDDY")
    queries = generate_range_queries(0.01)
    benchmark(lambda: [pam.range_query(q) for q in queries])
    # The paper's robustness ranking on skewed files: BUDDY < BANG* < GRID.
    for skewed in ("diagonal", "cluster"):
        assert table[skewed]["BUDDY"] < table[skewed]["BANG*"] < 110.0


def test_table_5_1(benchmark):
    table = all_query_averages()
    measured = {}
    for name in STRUCTURES:
        query_avg = sum(table[f][name] for f in ORDER) / len(ORDER)
        stors, inserts = [], []
        for file_name in ORDER:
            metrics = pam_results(file_name)[name].metrics
            stors.append(metrics.storage_utilization)
            inserts.append(metrics.insert_cost)
        measured[name] = (
            query_avg,
            sum(stors) / len(stors),
            sum(inserts) / len(inserts),
        )
    emit(
        "TAB-5.1",
        paper_vs_measured(
            "Table 5.1: unweighted average over all 7 distributions",
            PAM_SUMMARY_PAPER,
            measured,
            ("query avg", "stor", "insert"),
        ),
    )
    pam = built_pam("uniform", "GRID")
    queries = generate_range_queries(0.10)
    benchmark(lambda: [pam.range_query(q) for q in queries])
    # Headline: BUDDY is the overall winner; BUDDY+ at least as good;
    # packing lifts BUDDY+'s storage utilisation above plain BUDDY's.
    assert measured["BUDDY"][0] < measured["GRID"][0]
    assert measured["BUDDY"][0] < measured["BANG"][0]
    assert measured["BUDDY"][0] < measured["HB"][0]
    assert measured["BUDDY+"][0] <= measured["BUDDY"][0] * 1.05
    assert measured["BUDDY+"][1] > measured["BUDDY"][1]


def test_access_distributions():
    """With --report: per-query access *distributions*, not just means.

    The paper's tables only print averages; the run report records the
    full accesses-per-query histogram, whose p50/p90/p99 expose tail
    behaviour (e.g. directory skew) that an average hides.
    """
    if not reports_enabled():
        pytest.skip("run the benches with --report to trace distributions")
    report = pam_report("uniform")
    emit("TAB-5.1-DIST", report.render())
    # The traced histograms must agree exactly with the untraced means
    # that feed the paper tables.
    results = pam_results("uniform")
    for name, result in results.items():
        for label, cost in result.query_costs.items():
            hist = report.structures[name]["queries"][label]["accesses"]
            assert hist["mean"] == pytest.approx(cost)
            assert hist["p50"] <= hist["p90"] <= hist["p99"] <= hist["max"]
