"""PLOP vs quantile hashing [KS 87] on skewed data.

§1 quotes quantile hashing as "very efficient for non-uniform
distributions" while §2 excludes the whole directory-less family from
the comparison because it is "efficient only for weakly correlated
data, but not for strongly correlated data".  The bench shows both
halves: median boundaries beat dyadic midpoints where the *marginals*
are skewed (x-parallel, sinus), and neither scheme copes with 2-d
correlation (cluster).
"""

from repro.core.comparison import build_pam, run_pam_queries
from repro.pam.plop import PlopHashing, QuantileHashing
from repro.workloads.distributions import generate_point_file

from benchmarks.conftest import bench_scale, emit


def test_plop_vs_quantile(benchmark):
    rows = {}
    for file_name in ("x_parallel", "sinus", "cluster", "uniform"):
        points = generate_point_file(file_name, max(bench_scale() // 2, 2000))
        plop = run_pam_queries(build_pam(lambda s, dims=2: PlopHashing(s, dims), points))
        quantile = run_pam_queries(
            build_pam(lambda s, dims=2: QuantileHashing(s, dims), points)
        )
        rows[file_name] = (plop.query_average, quantile.query_average)
    benchmark(lambda: rows)
    emit(
        "ABL-QUANTILE",
        "PLOP vs quantile hashing (avg accesses per query)\n"
        f"{'':12s}{'PLOP':>10s}{'QUANTILE':>10s}\n"
        + "\n".join(
            f"{name:12s}{p:10.1f}{q:10.1f}" for name, (p, q) in rows.items()
        ),
    )
    # Skewed marginals: quantile boundaries adapt.
    assert rows["x_parallel"][1] < rows["x_parallel"][0]
    assert rows["sinus"][1] < rows["sinus"][0]
