"""BUDDY vs its balanced predecessor, the multilevel grid file.

§2 of the paper claims the path shortening of property (1) "is a
performance improvement for all operations (queries and updates)
compared to the balanced competitors of the buddy hash tree".  The
bench builds both structures on the cluster file and compares insert
cost, exact-match probes and the five query files.
"""

from repro.core.comparison import build_pam, measure, run_pam_queries
from repro.pam.buddytree import BuddyTree
from repro.pam.mlgf import MultilevelGridFile
from repro.workloads.distributions import generate_point_file

from benchmarks.conftest import bench_scale, emit


def test_buddy_vs_mlgf(benchmark):
    points = generate_point_file("cluster", max(bench_scale() // 2, 2000))
    buddy = build_pam(lambda s, dims=2: BuddyTree(s, dims), points)
    mlgf = build_pam(lambda s, dims=2: MultilevelGridFile(s, dims), points)

    def probe_total(tree):
        total = 0
        for p in points[:: max(1, len(points) // 200)]:
            tree.store.begin_operation()
            tree.store.begin_operation()
            cost, _ = measure(tree.store, lambda p=p: tree.exact_match(p))
            total += cost
        return total

    rows = {}
    for name, tree in (("BUDDY", buddy), ("MLGF", mlgf)):
        result = run_pam_queries(tree)
        rows[name] = (
            result.metrics.insert_cost,
            probe_total(tree),
            result.query_average,
            result.metrics.height,
            result.metrics.directory_pages,
        )
    benchmark(lambda: rows)
    emit(
        "ABL-MLGF",
        "BUDDY vs the multilevel grid file (cluster data)\n"
        f"{'':8s}{'insert':>8s}{'probes':>8s}{'query avg':>11s}{'h':>4s}{'dir pages':>11s}\n"
        + "\n".join(
            f"{name:8s}{ins:8.2f}{probes:8d}{avg:11.1f}{h:4d}{pages:11d}"
            for name, (ins, probes, avg, h, pages) in rows.items()
        ),
    )
    # A negative/ambiguous reproduction result, recorded as such in
    # EXPERIMENTS.md: the paper claims property (1) improves "all
    # operations ... compared to the balanced competitors", but at bench
    # scale the two variants are within a few percent of each other on
    # every metric, and the balanced variant's uniform depth can even
    # win under clustered/sorted insertions.  The bench asserts only
    # that neither dominates by more than a small factor.
    assert rows["BUDDY"][0] <= rows["MLGF"][0] * 1.15
    assert rows["BUDDY"][2] <= rows["MLGF"][2] * 1.25
