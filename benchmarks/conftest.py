"""Shared bench infrastructure.

Builds are expensive, so every (data file, structure) pair is built and
queried once per session and cached; the ``benchmark`` fixture then
times a representative re-run of one query file so ``pytest-benchmark``
reports wall-clock numbers while the printed tables report the paper's
metric (page accesses).

Every bench prints its paper-style table and writes it to
``results/<experiment id>.txt``; set ``REPRO_BENCH_SCALE`` to change the
number of records per file (default 10 000; the paper uses 100 000).

**Run reports** — invoking the benches with ``--report`` (or with
``REPRO_RUN_REPORT=1`` in the environment) traces every build and query
run through :mod:`repro.obs` and writes one machine-readable
:class:`~repro.obs.RunReport` per data file to
``results/RUN-PAM-<file>.json`` / ``results/RUN-SAM-<file>.json``,
alongside the usual text tables.  Inspect or diff them with
``python -m repro.obs.report``.  Tracing is passive, so the tables are
bit-identical with and without ``--report``.

**Parallel execution** — set ``REPRO_BENCH_WORKERS=N`` to fan each data
file's independent (structure, build+query) cells out over ``N`` worker
processes via :mod:`repro.parallel`, with a content-addressed build
cache (``REPRO_BUILD_CACHE``; ``off`` disables) so repeated sessions
skip finished cells.  The merge is deterministic: tables, totals and
run-report access histograms are identical to the serial run; only the
wall-clock timers differ.  The default of 1 keeps the historical
bit-identical in-process path.

**Explain traces** — set ``REPRO_EXPLAIN=1`` (or a directory path) to
record one EXPLAIN trace per (data file, structure) cell
(``explain/<file>/PAM-<name>.json`` under the results root, or the
given directory): every query's page
descent with candidates vs hits, prunes and duplicate elimination.
Recording is passive — tables and totals stay bit-identical — and the
per-query traces sum exactly to the measured access counts.  Worker
processes inherit the variable; warm-cache cells skip execution and
therefore write no traces.

**Performance ledger** — set ``REPRO_LEDGER=1`` (or a path) to append
every bench cell's timings and access totals to the fingerprinted
cross-run history in ``results/LEDGER.jsonl``; inspect and gate it with
``python -m repro.obs.ledger``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.comparison import (
    MethodResult,
    _explain_dir,
    _trace_path,
    build_pam,
    build_sam,
    run_pam_queries,
    run_sam_queries,
)
from repro.core.stats import AccessStats
from repro.core.testbed import (
    standard_pam_factories,
    standard_sam_factories,
    testbed_scale,
    testbed_workers,
)
from repro.obs.export import RunReport, build_run_report
from repro.obs.tracer import Tracer
from repro.workloads.distributions import generate_point_file
from repro.workloads.rect_distributions import generate_rect_file

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

_pam_cache: dict[str, dict[str, MethodResult]] = {}
_sam_cache: dict[str, dict[str, MethodResult]] = {}
_pam_built: dict[tuple[str, str], object] = {}
_pam_reports: dict[str, RunReport] = {}
_sam_reports: dict[str, RunReport] = {}

def pytest_addoption(parser):
    parser.addoption(
        "--report",
        action="store_true",
        default=False,
        help="trace the bench runs and write results/RUN-*.json run reports",
    )


def pytest_configure(config):
    # Propagated via the environment because pytest and the bench
    # modules may import this conftest as two distinct module objects.
    if config.getoption("--report", default=False):
        os.environ["REPRO_RUN_REPORT"] = "1"


def reports_enabled() -> bool:
    """Whether this bench session writes RunReport JSON files."""
    return os.environ.get("REPRO_RUN_REPORT", "") == "1"


def _record_ledger(
    kind: str,
    file_name: str,
    timers: dict[str, float],
    totals: dict,
    *,
    workers: int = 1,
    results: dict | None = None,
) -> None:
    """Append this bench cell to the performance ledger (REPRO_LEDGER).

    When ``results`` carry structure snapshots, each snapshot's
    redundancy block rides in the structure's totals so the gate flags
    redundancy drift like an access-count drift.
    """
    from repro.obs.ledger import entry_from_timers, ledger_from_env

    ledger = ledger_from_env()
    if ledger is None:
        return
    merged: dict[str, dict] = {}
    for name, stats in totals.items():
        row = stats.as_dict() if hasattr(stats, "as_dict") else dict(stats)
        snapshot = getattr((results or {}).get(name), "snapshot", None)
        if snapshot and "redundancy" in snapshot:
            row["redundancy"] = dict(snapshot["redundancy"])
        merged[name] = row
    ledger.record(
        entry_from_timers(
            label=f"{kind}-bench {file_name}",
            source="benchmarks/conftest.py",
            kind=kind,
            timers=timers,
            totals=merged,
            page_size=512,
            scale=bench_scale(),
            seed=101 if kind == "pam" else 107,
            workers=workers,
            meta={"file": file_name},
        )
    )


def _explain_recorder(name: str):
    """An ExplainRecorder when REPRO_EXPLAIN is on, else ``None``."""
    if _explain_dir() is None:
        return None
    from repro.obs.explain import ExplainRecorder

    return ExplainRecorder(name)


def _save_explain(recorder, kind: str, name: str, file_name: str) -> None:
    # One subdirectory per data file (matching the parallel workers);
    # without it each file's traces would overwrite the previous one's.
    if recorder is not None:
        recorder.save(_trace_path(_explain_dir() / file_name, kind, name))


def bench_scale() -> int:
    """Records per data file for this bench session."""
    return testbed_scale()


def bench_workers() -> int:
    """Worker processes per data file, from ``REPRO_BENCH_WORKERS``."""
    return testbed_workers()


def _parallel_results(kind: str, file_name: str) -> dict[str, MethodResult]:
    """Parallel (and build-cached) equivalent of the serial bench loops.

    Jobs replay the exact serial sequence per structure, so results,
    totals and span histograms merge back indistinguishably; the
    RunReport is assembled from the merged artefacts exactly as the
    serial path assembles it from its own.
    """
    from repro.parallel.cache import cache_from_env
    from repro.parallel.runner import run_pam_file, run_sam_file

    run_file = run_pam_file if kind == "pam" else run_sam_file
    outcome = run_file(
        file_name,
        scale=bench_scale(),
        workers=bench_workers(),
        cache=cache_from_env(),
    )
    if reports_enabled():
        report = build_run_report(
            label=f"{kind.upper()} {file_name}",
            kind=kind,
            scale=outcome.records,
            page_size=512,
            seed=101 if kind == "pam" else 107,
            results=outcome.results,
            totals=outcome.totals,
            spans=outcome.spans,
            timers=outcome.timers,
            meta={"file": file_name, "bench_scale": bench_scale()},
        )
        reports = _pam_reports if kind == "pam" else _sam_reports
        reports[file_name] = report
        report.save(RESULTS_DIR / f"RUN-{kind.upper()}-{file_name}.json")
    _record_ledger(
        kind,
        file_name,
        outcome.timers,
        outcome.totals,
        workers=bench_workers(),
        results=outcome.results,
    )
    return outcome.results


def pam_results(file_name: str) -> dict[str, MethodResult]:
    """Build every PAM (plus BUDDY+) on ``file_name`` and run the queries."""
    if file_name in _pam_cache:
        return _pam_cache[file_name]
    if bench_workers() > 1:
        results = _parallel_results("pam", file_name)
        _pam_cache[file_name] = results
        return results
    points = generate_point_file(file_name, bench_scale())
    tracer = Tracer() if reports_enabled() else None
    results: dict[str, MethodResult] = {}
    totals: dict[str, AccessStats] = {}
    timers: dict[str, float] = {}
    for name, factory in standard_pam_factories().items():
        if tracer is not None:
            tracer.set_context(structure=name)
        started = time.perf_counter()
        pam = build_pam(factory, points, tracer=tracer)
        timers[f"{name}/build"] = time.perf_counter() - started
        _pam_built[(file_name, name)] = pam
        started = time.perf_counter()
        explain = _explain_recorder(name)
        result = run_pam_queries(pam, tracer=tracer, explain=explain)
        timers[f"{name}/queries"] = time.perf_counter() - started
        _save_explain(explain, "pam", name, file_name)
        result.name = name
        result.snapshot = pam.snapshot()
        results[name] = result
        totals[name] = pam.store.stats.snapshot()
        if name == "BUDDY":
            # The packed variant is derived from the built BUDDY file,
            # exactly as the authors generated it by simulation.  It
            # shares BUDDY's store, so its totals are the delta from
            # this point on (pack + its own query run).
            before = pam.store.stats.snapshot()
            if tracer is not None:
                tracer.set_context(structure="BUDDY+", op="pack")
            started = time.perf_counter()
            pam.pack()
            timers["BUDDY+/build"] = time.perf_counter() - started
            started = time.perf_counter()
            explain = _explain_recorder("BUDDY+")
            packed = run_pam_queries(pam, tracer=tracer, explain=explain)
            timers["BUDDY+/queries"] = time.perf_counter() - started
            _save_explain(explain, "pam", "BUDDY+", file_name)
            packed.name = "BUDDY+"
            packed.snapshot = pam.snapshot()
            results["BUDDY+"] = packed
            totals["BUDDY+"] = pam.store.stats - before
    if tracer is not None:
        report = build_run_report(
            label=f"PAM {file_name}",
            kind="pam",
            scale=len(points),
            page_size=512,
            seed=101,
            results=results,
            totals=totals,
            spans=tracer.finish(),
            timers=timers,
            meta={"file": file_name, "bench_scale": bench_scale()},
        )
        _pam_reports[file_name] = report
        report.save(RESULTS_DIR / f"RUN-PAM-{file_name}.json")
    _record_ledger("pam", file_name, timers, totals, results=results)
    _pam_cache[file_name] = results
    return results


def pam_report(file_name: str) -> RunReport | None:
    """The RunReport of :func:`pam_results` (``None`` without --report)."""
    pam_results(file_name)
    return _pam_reports.get(file_name)


def built_pam(file_name: str, name: str):
    """The cached built structure (after :func:`pam_results`).

    In parallel sessions the structures are built inside worker
    processes, so the representative copy that the ``pytest-benchmark``
    timing fixture drives is rebuilt here on first demand (BUDDY is
    packed afterwards, mirroring the serial session where BUDDY+ is
    derived from the same object).
    """
    pam_results(file_name)
    key = (file_name, name)
    if key not in _pam_built:
        base = "BUDDY" if name == "BUDDY+" else name
        factory = standard_pam_factories()[base]
        points = generate_point_file(file_name, bench_scale())
        pam = build_pam(factory, points)
        if base == "BUDDY":
            pam.pack()
        _pam_built[key] = pam
    return _pam_built[key]


def sam_results(file_name: str) -> dict[str, MethodResult]:
    """Build every SAM on ``file_name`` and run the §7 query workload."""
    if file_name in _sam_cache:
        return _sam_cache[file_name]
    if bench_workers() > 1:
        results = _parallel_results("sam", file_name)
        _sam_cache[file_name] = results
        return results
    rects = generate_rect_file(file_name, bench_scale())
    tracer = Tracer() if reports_enabled() else None
    results: dict[str, MethodResult] = {}
    totals: dict[str, AccessStats] = {}
    timers: dict[str, float] = {}
    for name, factory in standard_sam_factories().items():
        if tracer is not None:
            tracer.set_context(structure=name)
        started = time.perf_counter()
        sam = build_sam(factory, rects, tracer=tracer)
        timers[f"{name}/build"] = time.perf_counter() - started
        started = time.perf_counter()
        explain = _explain_recorder(name)
        result = run_sam_queries(sam, tracer=tracer, explain=explain)
        timers[f"{name}/queries"] = time.perf_counter() - started
        _save_explain(explain, "sam", name, file_name)
        result.name = name
        result.snapshot = sam.snapshot()
        results[name] = result
        totals[name] = sam.store.stats.snapshot()
    if tracer is not None:
        report = build_run_report(
            label=f"SAM {file_name}",
            kind="sam",
            scale=len(rects),
            page_size=512,
            seed=107,
            results=results,
            totals=totals,
            spans=tracer.finish(),
            timers=timers,
            meta={"file": file_name, "bench_scale": bench_scale()},
        )
        _sam_reports[file_name] = report
        report.save(RESULTS_DIR / f"RUN-SAM-{file_name}.json")
    _record_ledger("sam", file_name, timers, totals, results=results)
    _sam_cache[file_name] = results
    return results


def sam_report(file_name: str) -> RunReport | None:
    """The RunReport of :func:`sam_results` (``None`` without --report)."""
    sam_results(file_name)
    return _sam_reports.get(file_name)


def emit(experiment_id: str, text: str) -> None:
    """Print a table and persist it under ``results/``."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n", encoding="utf-8")


def emit_json(experiment_id: str, doc: dict) -> Path:
    """Persist a schema-validated JSON artefact under ``results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment_id}.json"
    path.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def paper_vs_measured(
    title: str,
    paper: dict[str, tuple],
    measured: dict[str, tuple],
    columns: tuple[str, ...],
) -> str:
    """Two-row-per-structure table: the paper's value above ours."""
    # The list form keeps the floor at 10 even for an empty ``columns``
    # tuple, where star-unpacking into max() would raise a TypeError.
    width = max([10, *(len(c) + 2 for c in columns)])
    header = f"{'':14s}" + "".join(f"{c:>{width}s}" for c in columns)
    lines = [title, header]
    for name in measured:
        for label, row in (("paper", paper.get(name)), ("here", measured[name])):
            if row is None:
                continue
            cells = "".join(
                f"{v:{width}.1f}" if isinstance(v, (int, float)) else f"{'-':>{width}s}"
                for v in row
            )
            lines.append(f"{name:8s}{label:>6s}{cells}")
    return "\n".join(lines)


@pytest.fixture(scope="session")
def scale() -> int:
    return bench_scale()
