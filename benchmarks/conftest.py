"""Shared bench infrastructure.

Builds are expensive, so every (data file, structure) pair is built and
queried once per session and cached; the ``benchmark`` fixture then
times a representative re-run of one query file so ``pytest-benchmark``
reports wall-clock numbers while the printed tables report the paper's
metric (page accesses).

Every bench prints its paper-style table and writes it to
``results/<experiment id>.txt``; set ``REPRO_BENCH_SCALE`` to change the
number of records per file (default 10 000; the paper uses 100 000).
"""

from __future__ import annotations

import copy
from pathlib import Path

import pytest

from repro.core.comparison import (
    MethodResult,
    build_pam,
    build_sam,
    run_pam_queries,
    run_sam_queries,
)
from repro.core.testbed import (
    standard_pam_factories,
    standard_sam_factories,
    testbed_scale,
)
from repro.workloads.distributions import generate_point_file
from repro.workloads.rect_distributions import generate_rect_file

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

_pam_cache: dict[str, dict[str, MethodResult]] = {}
_sam_cache: dict[str, dict[str, MethodResult]] = {}
_pam_built: dict[tuple[str, str], object] = {}


def bench_scale() -> int:
    """Records per data file for this bench session."""
    return testbed_scale()


def pam_results(file_name: str) -> dict[str, MethodResult]:
    """Build every PAM (plus BUDDY+) on ``file_name`` and run the queries."""
    if file_name in _pam_cache:
        return _pam_cache[file_name]
    points = generate_point_file(file_name, bench_scale())
    results: dict[str, MethodResult] = {}
    for name, factory in standard_pam_factories().items():
        pam = build_pam(factory, points)
        _pam_built[(file_name, name)] = pam
        result = run_pam_queries(pam)
        result.name = name
        results[name] = result
        if name == "BUDDY":
            # The packed variant is derived from the built BUDDY file,
            # exactly as the authors generated it by simulation.
            pam.pack()
            packed = run_pam_queries(pam)
            packed.name = "BUDDY+"
            results["BUDDY+"] = packed
    _pam_cache[file_name] = results
    return results


def built_pam(file_name: str, name: str):
    """The cached built structure (after :func:`pam_results`)."""
    pam_results(file_name)
    return _pam_built[(file_name, name)]


def sam_results(file_name: str) -> dict[str, MethodResult]:
    """Build every SAM on ``file_name`` and run the §7 query workload."""
    if file_name in _sam_cache:
        return _sam_cache[file_name]
    rects = generate_rect_file(file_name, bench_scale())
    results: dict[str, MethodResult] = {}
    for name, factory in standard_sam_factories().items():
        sam = build_sam(factory, rects)
        result = run_sam_queries(sam)
        result.name = name
        results[name] = result
    _sam_cache[file_name] = results
    return results


def emit(experiment_id: str, text: str) -> None:
    """Print a table and persist it under ``results/``."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n", encoding="utf-8")


def paper_vs_measured(
    title: str,
    paper: dict[str, tuple],
    measured: dict[str, tuple],
    columns: tuple[str, ...],
) -> str:
    """Two-row-per-structure table: the paper's value above ours."""
    width = max(10, *(len(c) + 2 for c in columns))
    header = f"{'':14s}" + "".join(f"{c:>{width}s}" for c in columns)
    lines = [title, header]
    for name in measured:
        for label, row in (("paper", paper.get(name)), ("here", measured[name])):
            if row is None:
                continue
            cells = "".join(
                f"{v:{width}.1f}" if isinstance(v, (int, float)) else f"{'-':>{width}s}"
                for v in row
            )
            lines.append(f"{name:8s}{label:>6s}{cells}")
    return "\n".join(lines)


@pytest.fixture(scope="session")
def scale() -> int:
    return bench_scale()
