"""The twin grid file (class C2): space optimisation vs query cost.

§2 sets the twin grid file aside "since the concept ... is generally
applicable to any PAM", suggesting it for future work.  The bench fills
the gap: the twin principle buys storage utilisation (towards the
published ~90 % at the paper's scale) but pays two directory searches
per operation.
"""

from repro.core.comparison import build_pam, run_pam_queries
from repro.pam.gridfile import GridFile
from repro.pam.twingrid import TwinGridFile
from repro.workloads.distributions import generate_point_file

from benchmarks.conftest import bench_scale, emit


def test_twin_vs_single_grid(benchmark):
    rows = {}
    for file_name in ("uniform", "cluster"):
        points = generate_point_file(file_name, max(bench_scale() // 2, 2000))
        single = run_pam_queries(build_pam(lambda s, dims=2: GridFile(s, dims), points))
        twin = run_pam_queries(
            build_pam(lambda s, dims=2: TwinGridFile(s, dims), points)
        )
        rows[file_name] = (
            single.metrics.storage_utilization,
            twin.metrics.storage_utilization,
            single.query_average,
            twin.query_average,
        )
    benchmark(lambda: rows)
    emit(
        "ABL-TWIN",
        "Twin grid file vs one-level grid file\n"
        f"{'':10s}{'stor 1x':>9s}{'stor twin':>10s}{'qa 1x':>8s}{'qa twin':>9s}\n"
        + "\n".join(
            f"{name:10s}{s1:9.1f}{s2:10.1f}{q1:8.1f}{q2:9.1f}"
            for name, (s1, s2, q1, q2) in rows.items()
        ),
    )
    for s1, s2, _, _ in rows.values():
        assert s2 > s1  # the space optimisation is real
