"""Reproduces the five §8 SAM tables (absolute accesses per query type).

Each table runs the full §7 workload (160 query rectangles of eight
size/shape classes for intersection, enclosure and containment, plus 20
point queries) against the R-tree, BANG and BUDDY via transformation,
and PLOP via overlapping regions.
"""

from repro.bench.paper import SAM_TABLE_PAPER
from repro.core.comparison import SAM_QUERY_TYPES

from benchmarks.conftest import (
    emit,
    paper_vs_measured,
    reports_enabled,
    sam_report,
    sam_results,
)

COLUMNS = ("point", "intersect", "enclose", "contain")


def measured_rows(results):
    return {
        name: tuple(result.query_costs[q] for q in SAM_QUERY_TYPES)
        for name, result in results.items()
    }


def run_table(benchmark, file_name: str, experiment_id: str, title: str):
    results = sam_results(file_name)
    emit(
        experiment_id,
        paper_vs_measured(
            title, SAM_TABLE_PAPER[file_name], measured_rows(results), COLUMNS
        ),
    )
    if reports_enabled():
        emit(f"{experiment_id}-DIST", sam_report(file_name).render())
    benchmark(lambda: results)  # builds/queries are cached; time the lookup
    return results


def cost(results, name, query):
    return results[name].query_costs[query]


def test_table_gaussianslim(benchmark):
    results = run_table(
        benchmark, "gaussian_slim", "TAB-SAM-GSLIM", "Gaussianslim-Distribution"
    )
    # Paper: transformation containment is far below R-tree containment.
    assert cost(results, "BUDDY", "containment") < cost(results, "R-Tree", "containment")


def test_table_uniformsmall(benchmark):
    results = run_table(
        benchmark, "uniform_small", "TAB-SAM-USMALL", "Uniformsmall-Distribution"
    )
    # Region minimisation makes BUDDY the better transformation
    # substrate.  (With near-point rectangles nearly every intersecting
    # rectangle is also contained, so the containment shortcut has
    # nothing to win on this file — see EXPERIMENTS.md.)
    assert cost(results, "BUDDY", "point") < cost(results, "BANG", "point")


def test_table_gaussiansquare(benchmark):
    results = run_table(
        benchmark, "gaussian_square", "TAB-SAM-GSQ", "Gaussiansquare-Distribution"
    )
    # "The technique of transformation was always best for the rectangle
    # containment query" (§8).
    assert cost(results, "BUDDY", "containment") < cost(
        results, "R-Tree", "containment"
    )
    assert cost(results, "BANG", "containment") < cost(
        results, "R-Tree", "containment"
    )


def test_table_uniformlarge(benchmark):
    results = run_table(
        benchmark, "uniform_large", "TAB-SAM-ULARGE", "Uniformlarge-Distribution"
    )
    # Paper: large rectangles ruin the R-tree and PLOP; BANG/BUDDY
    # containment stays tiny thanks to the corner transformation.
    assert cost(results, "BANG", "containment") < 0.2 * cost(
        results, "R-Tree", "containment"
    )
    assert cost(results, "PLOP", "intersection") > 0.5 * cost(
        results, "R-Tree", "intersection"
    )


def test_table_sam_diagonal(benchmark):
    results = run_table(
        benchmark, "diagonal", "TAB-SAM-DIAG", "Diagonal-Distribution"
    )
    # Paper: PLOP is the clear loser on the diagonal rectangles.
    assert cost(results, "PLOP", "intersection") > cost(results, "BUDDY", "intersection")
