"""BUDDY packing ablation (the BUDDY+ variant of §5).

Packing merges underfilled data pages referenced from one and the same
directory page.  The paper observes that the storage-utilisation gain
(to > 71 %) is "not adequately reflected" in the retrieval gain — both
effects are measured here, on the pathological bit distribution that
motivated packing in the first place and on the cluster file.
"""

from repro.core.comparison import build_pam, run_pam_queries
from repro.pam.buddytree import BuddyTree
from repro.workloads.distributions import generate_point_file

from benchmarks.conftest import bench_scale, emit


def run_packing(file_name: str):
    points = generate_point_file(file_name, max(bench_scale() // 2, 2000))
    tree = build_pam(lambda s, dims=2: BuddyTree(s, dims), points)
    before = run_pam_queries(tree)
    saved = tree.pack()
    after = run_pam_queries(tree)
    return before, after, saved


def test_packing_bit_distribution(benchmark):
    """bit(z) with z -> 0 is BUDDY's worst case and packing's motivation."""
    before, after, saved = benchmark.pedantic(
        lambda: run_packing("bit"), rounds=1, iterations=1
    )
    emit(
        "ABL-BUDDY-PACK-BIT",
        "BUDDY packing on the bit distribution\n"
        f"{'':10s}{'stor':>8s}{'query avg':>12s}{'data pages':>12s}\n"
        f"{'BUDDY':10s}{before.metrics.storage_utilization:8.1f}"
        f"{before.query_average:12.1f}{before.metrics.data_pages:12d}\n"
        f"{'BUDDY+':10s}{after.metrics.storage_utilization:8.1f}"
        f"{after.query_average:12.1f}{after.metrics.data_pages:12d}\n"
        f"pages saved: {saved}",
    )
    assert saved > 0
    assert after.metrics.storage_utilization > before.metrics.storage_utilization
    assert after.query_average <= before.query_average


def test_packing_cluster(benchmark):
    before, after, saved = benchmark.pedantic(
        lambda: run_packing("cluster"), rounds=1, iterations=1
    )
    emit(
        "ABL-BUDDY-PACK-CLUSTER",
        "BUDDY packing on the cluster distribution\n"
        f"{'':10s}{'stor':>8s}{'query avg':>12s}\n"
        f"{'BUDDY':10s}{before.metrics.storage_utilization:8.1f}"
        f"{before.query_average:12.1f}\n"
        f"{'BUDDY+':10s}{after.metrics.storage_utilization:8.1f}"
        f"{after.query_average:12.1f}",
    )
    # "Even the improvement in storage utilization ... is not adequately
    # reflected in the improvement of the retrieval performance" — the
    # query gain is small but never a loss.
    assert after.metrics.storage_utilization >= before.metrics.storage_utilization
    assert after.query_average <= before.query_average * 1.02
