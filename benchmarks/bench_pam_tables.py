"""Reproduces the four §4 PAM tables (TAB-UNIF/SINUS/BIT/XPAR).

Each table reports the five query types as percentages of GRID (= 100)
plus storage utilisation, directory/data ratio, insertion cost and
directory height, side by side with the paper's published rows.
"""

from repro.bench.paper import PAM_TABLE_PAPER
from repro.core.comparison import PAM_QUERY_TYPES, normalise
from repro.workloads.queries import generate_range_queries

from benchmarks.conftest import (
    built_pam,
    emit,
    pam_report,
    pam_results,
    paper_vs_measured,
    reports_enabled,
)

COLUMNS = ("rq.1%", "rq1%", "rq10%", "pm-x", "pm-y", "stor", "dir/dat", "insert", "h")


def measured_rows(results, norm):
    rows = {}
    for name, result in results.items():
        m = result.metrics
        rows[name] = tuple(norm[name][q] for q in PAM_QUERY_TYPES) + (
            m.storage_utilization,
            m.dir_data_ratio,
            m.insert_cost,
            m.height,
        )
    return rows


def run_table(benchmark, file_name: str, experiment_id: str, title: str):
    results = pam_results(file_name)
    norm = normalise(results, "GRID")
    table = paper_vs_measured(
        title, PAM_TABLE_PAPER.get(file_name, {}), measured_rows(results, norm), COLUMNS
    )
    emit(experiment_id, table)
    if reports_enabled():
        # Alongside the paper's means, the traced access distributions.
        emit(f"{experiment_id}-DIST", pam_report(file_name).render())
    pam = built_pam(file_name, "GRID")
    queries = generate_range_queries(0.01)
    benchmark(lambda: [pam.range_query(q) for q in queries])
    return results, norm


def query_average(norm, name):
    return sum(norm[name].values()) / len(norm[name])


def test_table_uniform(benchmark):
    results, norm = run_table(
        benchmark, "uniform", "TAB-UNIF", "Uniform Distribution (GRID = 100)"
    )
    # Paper: GRID wins on uniform data; every competitor is within ~±20 %.
    for name in ("HB", "BANG", "BUDDY"):
        assert query_average(norm, name) > 90.0


def test_table_sinus(benchmark):
    results, norm = run_table(
        benchmark, "sinus", "TAB-SINUS", "Sinus Distribution (GRID = 100)"
    )
    # Paper: BUDDY edges out GRID on the sinus file.
    assert query_average(norm, "BUDDY") < 100.0


def test_table_bit(benchmark):
    results, norm = run_table(benchmark, "bit", "TAB-BIT", "Bit Distribution (GRID = 100)")
    # Paper: bit(0.15) is BUDDY's worst case and HB's best case.
    assert query_average(norm, "BUDDY") > query_average(norm, "HB")
    assert query_average(norm, "HB") < 100.0


def test_table_x_parallel(benchmark):
    results, norm = run_table(
        benchmark, "x_parallel", "TAB-XPAR", "x-Parallel (GRID = 100)"
    )
    # Paper: BUDDY is the clear winner on x-parallel data.
    assert query_average(norm, "BUDDY") < 100.0
