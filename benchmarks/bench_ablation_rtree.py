"""R-tree ablations: split policy and minimum fill (§7, §8).

The paper states that Guttman's original split "can easily be improved
by improving its split condition, e.g. by using Diane Greene's split
condition.  Even this split condition can still considerably be
improved" (their margin-minimising split) — and that retrieval was best
at a *30 %* minimum fill rather than Greene's 50 %.
"""

from repro.core.comparison import build_sam, run_sam_queries
from repro.sam.rtree import RTree
from repro.workloads.rect_distributions import generate_rect_file

from benchmarks.conftest import bench_scale, emit


def query_average(result):
    return sum(result.query_costs.values()) / len(result.query_costs)


def test_split_policies(benchmark):
    rects = generate_rect_file("gaussian_square", max(bench_scale() // 2, 2000))
    results = {}
    for policy in ("guttman", "greene", "margin"):
        sam = build_sam(
            lambda s, dims=2, p=policy: RTree(s, dims, split_policy=p), rects
        )
        results[policy] = run_sam_queries(sam)
    benchmark(lambda: results)
    emit(
        "ABL-RTREE-SPLIT",
        "R-tree split policies (Gaussiansquare, avg accesses per query)\n"
        + "\n".join(
            f"{policy:10s}{query_average(result):10.1f}"
            f"  stor={result.metrics.storage_utilization:5.1f}"
            for policy, result in results.items()
        ),
    )
    policies = sorted(results, key=lambda p: query_average(results[p]))
    # Guttman's split never wins the retrieval comparison outright.
    assert policies[0] in ("greene", "margin")


def test_min_fill(benchmark):
    rects = generate_rect_file("uniform_small", max(bench_scale() // 2, 2000))
    results = {}
    for fill in (0.3, 0.5):
        sam = build_sam(
            lambda s, dims=2, f=fill: RTree(s, dims, min_fill=f), rects
        )
        results[fill] = run_sam_queries(sam)
    benchmark(lambda: results)
    emit(
        "ABL-RTREE-FILL",
        "R-tree minimum fill (Uniformsmall, avg accesses per query)\n"
        + "\n".join(
            f"min_fill={fill:<6}{query_average(result):10.1f}"
            f"  stor={result.metrics.storage_utilization:5.1f}"
            for fill, result in results.items()
        ),
    )
    # §7: "best retrieval performance for a minimum storage utilization
    # of 30%" — 30 % must not lose to 50 % by more than noise.
    assert query_average(results[0.3]) <= query_average(results[0.5]) * 1.10
