"""Scale-sensitivity ablation (the §3 claim behind 512-byte pages).

"Using small page sizes, we obtain similar performance results as for
much larger file sizes" — the relative ranking of the structures should
be stable in the number of records.  The bench compares the BUDDY/GRID
query-average ratio on the diagonal file at three scales.
"""

from repro.core.comparison import normalise, run_pam_experiment
from repro.core.testbed import standard_pam_factories
from repro.workloads.distributions import generate_point_file

from benchmarks.conftest import bench_scale, emit


def test_ranking_stable_across_scales(benchmark):
    factories = {
        name: f for name, f in standard_pam_factories().items() if name != "BANG*"
    }
    base = max(bench_scale() // 4, 1000)
    scales = (base, 2 * base, 4 * base)
    ratios = {}
    for n in scales:
        points = generate_point_file("diagonal", n)
        results = run_pam_experiment(factories, points)
        norm = normalise(results, "GRID")
        ratios[n] = {
            name: sum(norm[name].values()) / len(norm[name]) for name in factories
        }
    benchmark(lambda: ratios)
    emit(
        "ABL-SCALE",
        "Scale sensitivity (diagonal file, query average % of GRID)\n"
        f"{'n':>8s}" + "".join(f"{name:>10s}" for name in factories) + "\n"
        + "\n".join(
            f"{n:8d}" + "".join(f"{ratios[n][name]:10.1f}" for name in factories)
            for n in scales
        ),
    )
    # BUDDY dominates GRID at every scale, and the winner never changes.
    for n in scales:
        assert ratios[n]["BUDDY"] < 60.0
        assert ratios[n]["BUDDY"] == min(ratios[n].values())
